//! Concurrency hammering of the LRU trace caches: many threads cycling
//! through more keys than the cache holds, far past capacity, while
//! every replayed result is checked bit-for-bit against its expected
//! output. Catches torn eviction (a replay observing a half-evicted
//! trace), cross-key mixups under racing inserts, and counter drift.

use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::{TensorId, TensorType};
use graphene_ir::{Arch, ScalarType};
use graphene_layout::Layout;
use graphene_sim::{
    replay_graph, replay_opt_with, ArgBinding, ExecGraph, ExecMode, ExecNode, GraphTraceCache,
    KernelPlan, TraceCache, TraceKey,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A single-block copy kernel of `len` threads: `out[i] = in[i]`.
/// Different lengths give genuinely different traces, so serving the
/// wrong trace for a key is detected by the output check (or by a
/// buffer-size error), not just by luck.
fn copy_plan(len: i64) -> (Arc<KernelPlan>, TensorId, TensorId) {
    let mut kb = KernelBuilder::new(format!("copy{len}"), &[1], &[len]);
    let src = kb.param("in", &[len], ScalarType::F32);
    let dst = kb.param("out", &[len], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let tid = kb.module()[block].group_coords()[0].clone();
    let v = kb.alloc_reg("v", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
    let se = kb.index(src, std::slice::from_ref(&tid));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![v]);
    let de = kb.index(dst, std::slice::from_ref(&tid));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![v], vec![de]);
    let kernel = kb.build();
    let plan = KernelPlan::compile(&kernel, Arch::Sm86).expect("compile copy kernel");
    (Arc::new(plan), kernel.params[0], kernel.params[1])
}

/// Input buffer for problem `i`: values no other problem produces.
fn input_for(i: usize, len: usize) -> Vec<f32> {
    (0..len).map(|j| (i * 1000 + j) as f32).collect()
}

#[test]
fn trace_cache_survives_concurrent_hammering_past_capacity() {
    const KEYS: usize = 6;
    const THREADS: usize = 8;
    const ITERS: usize = 60;

    let cache = TraceCache::with_capacity(3);
    let problems: Vec<(TraceKey, Arc<KernelPlan>, TensorId, Vec<f32>)> = (0..KEYS)
        .map(|i| {
            let len = 32 * (i as i64 + 1);
            let (plan, src, _dst) = copy_plan(len);
            let key = TraceKey {
                kernel: format!("copy{len}"),
                problem: format!("len={len}"),
                arch: Arch::Sm86,
            };
            (key, plan, src, input_for(i, len as usize))
        })
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let problems = &problems;
            s.spawn(move || {
                let bindings = HashMap::new();
                for iter in 0..ITERS {
                    let i = (t + iter) % KEYS;
                    let (key, plan, src, input) = &problems[i];
                    let trace = cache.get_or_record(key, plan, &bindings).expect("record");
                    let mut inputs = HashMap::new();
                    inputs.insert(*src, input.clone());
                    let out =
                        replay_opt_with(&trace, &inputs, ExecMode::Sequential).expect("replay");
                    // The copy output must be bit-identical to this
                    // key's input — any torn or mixed-up trace shows
                    // up here.
                    let (_, _, dst, _) = &problems[i];
                    let got = &out.globals[dst];
                    assert_eq!(got, input, "key {i} replayed wrong data on thread {t}");
                }
            });
        }
    });

    let total = (THREADS * ITERS) as u64;
    // Every get_or_record is exactly one hit or one recording.
    assert_eq!(cache.hits() + cache.recordings(), total, "counter drift");
    // 6 keys cycling through 3 slots must evict continuously.
    assert!(cache.evictions() > 0, "expected evictions past capacity");
    assert!(cache.len() <= 3, "capacity bound violated: {}", cache.len());
    // Each successful (non-raced) insert either grew the map or
    // evicted a victim; racing duplicate recordings only add to the
    // recording count.
    assert!(
        cache.recordings() >= cache.evictions() + cache.len() as u64,
        "recordings {} < evictions {} + len {}",
        cache.recordings(),
        cache.evictions(),
        cache.len()
    );
}

#[test]
fn graph_trace_cache_survives_concurrent_hammering_past_capacity() {
    const KEYS: usize = 4;
    const THREADS: usize = 6;
    const ITERS: usize = 40;

    let graphs_cache = GraphTraceCache::with_capacity(2);
    let traces = TraceCache::new();
    let graphs: Vec<(ExecGraph, Vec<f32>)> = (0..KEYS)
        .map(|i| {
            let len = 32 * (i as i64 + 1);
            let (plan, _src, _dst) = copy_plan(len);
            let g = ExecGraph {
                signature: format!("copy-graph-{len}"),
                problem: format!("len={len}"),
                arch: Arch::Sm86,
                nodes: vec![ExecNode {
                    kernel: format!("copy{len}"),
                    problem: format!("len={len}"),
                    plan,
                    args: vec![ArgBinding::External("x".to_string()), ArgBinding::TempOut(0)],
                }],
                temps: vec![len as usize],
                outputs: vec![0],
            };
            g.validate().expect("graph validates");
            (g, input_for(i, len as usize))
        })
        .collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let graphs_cache = &graphs_cache;
            let traces = &traces;
            let graphs = &graphs;
            s.spawn(move || {
                for iter in 0..ITERS {
                    let i = (t + iter) % KEYS;
                    let (g, input) = &graphs[i];
                    let gt = graphs_cache.get_or_record(g, traces).expect("record graph");
                    let mut inputs = HashMap::new();
                    inputs.insert("x".to_string(), input.clone());
                    let out = replay_graph(&gt, &inputs, ExecMode::Sequential).expect("replay");
                    assert_eq!(&out.outputs[&0], input, "graph {i} replayed wrong data");
                }
            });
        }
    });

    let total = (THREADS * ITERS) as u64;
    assert_eq!(graphs_cache.hits() + graphs_cache.recordings(), total, "counter drift");
    assert!(graphs_cache.evictions() > 0, "expected graph evictions past capacity");
    assert!(graphs_cache.len() <= 2, "capacity bound violated: {}", graphs_cache.len());
}
