//! Property-based tests of the roofline timing model.
//!
//! The autotuner ranks schedules by [`time_kernel`]'s `time_s`, so the
//! model must be *monotone* in the costs the tuner trades off: a
//! schedule that serialises more shared-memory transactions (bank
//! conflicts) or moves more DRAM bytes can never be modelled as
//! faster, all else equal. Without these laws a search could "improve"
//! a kernel by adding conflicts.

use graphene_sim::{time_kernel, Counters, AMPERE_A6000, VOLTA_V100};
use proptest::prelude::*;

/// Strategy: plausible kernel counters spanning launch-bound tiny
/// kernels to compute/memory-bound large ones.
fn counters() -> impl Strategy<Value = Counters> {
    (
        0u64..1 << 40, // flops_tc
        0u64..1 << 34, // flops_fma
        0u64..1 << 32, // unique global read bytes
        0u64..1 << 30, // unique global write bytes
        1u64..16,      // L2 re-read amplification
        0u64..1 << 26, // smem accesses
        1u64..32,      // conflict multiplier
    )
        .prop_map(|(tc, fma, ur, uw, amp, acc, conf)| Counters {
            flops_tc: tc,
            flops_fma: fma,
            unique_global_read_bytes: ur,
            unique_global_write_bytes: uw,
            global_read_bytes: ur.saturating_mul(amp),
            global_write_bytes: uw,
            smem_read_bytes: acc.saturating_mul(128),
            smem_accesses: acc,
            smem_transactions: acc.saturating_mul(conf),
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More bank-conflict serialisation (more shared-memory
    /// transactions for the same accesses) never makes the model
    /// faster.
    #[test]
    fn time_is_monotone_in_smem_transactions(
        c in counters(),
        extra in 0u64..1 << 24,
        blocks in 0i64..4096,
    ) {
        let worse = Counters {
            smem_transactions: c.smem_transactions.saturating_add(extra),
            ..c
        };
        for m in [&AMPERE_A6000, &VOLTA_V100] {
            let base = time_kernel(&c, m, blocks);
            let conflicted = time_kernel(&worse, m, blocks);
            prop_assert!(
                conflicted.time_s >= base.time_s,
                "{} < {} on {} (+{extra} transactions)",
                conflicted.time_s, base.time_s, m.name
            );
            prop_assert!(conflicted.smem_time_s >= base.smem_time_s);
        }
    }

    /// More DRAM traffic never makes the model faster.
    #[test]
    fn time_is_monotone_in_dram_bytes(
        c in counters(),
        extra_r in 0u64..1 << 28,
        extra_w in 0u64..1 << 28,
        blocks in 0i64..4096,
    ) {
        // `dram_bytes()` is the *unique* traffic; grow the L2-visible
        // totals alongside so the counters stay self-consistent.
        let worse = Counters {
            unique_global_read_bytes: c.unique_global_read_bytes.saturating_add(extra_r),
            unique_global_write_bytes: c.unique_global_write_bytes.saturating_add(extra_w),
            global_read_bytes: c.global_read_bytes.saturating_add(extra_r),
            global_write_bytes: c.global_write_bytes.saturating_add(extra_w),
            ..c
        };
        for m in [&AMPERE_A6000, &VOLTA_V100] {
            let base = time_kernel(&c, m, blocks);
            let heavier = time_kernel(&worse, m, blocks);
            prop_assert!(
                heavier.time_s >= base.time_s,
                "{} < {} on {} (+{extra_r}B read, +{extra_w}B written)",
                heavier.time_s, base.time_s, m.name
            );
            prop_assert!(heavier.dram_time_s >= base.dram_time_s);
        }
    }

    /// Time is always at least the launch overhead and always finite.
    #[test]
    fn time_is_bounded_below_by_launch(c in counters(), blocks in 0i64..4096) {
        for m in [&AMPERE_A6000, &VOLTA_V100] {
            let p = time_kernel(&c, m, blocks);
            prop_assert!(p.time_s.is_finite());
            prop_assert!(p.time_s >= p.launch_s);
        }
    }
}
