//! The F₂ proof engine over the paper kernels: every shipped schedule's
//! shared-memory behaviour is *proven* — conflict grades carry proof
//! provenance (no sampling fallback), every write-involving race pair is
//! decided symbolically or by complete enumeration, and every
//! shared/global access is proven inside its allocation. Planted
//! out-of-bounds defects trip `GRA015`, and swizzle synthesis reproduces
//! the builders' hand swizzle.

use graphene_analysis::banks::grade_sites;
use graphene_analysis::prove::{prove_kernel, synthesize_for_root, BoundsStatus};
use graphene_analysis::{analyze_kernel, Severity};
use graphene_ir::{Arch, Kernel, MemSpace, TensorId};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_kernels::lstm::{build_fused_lstm, LstmConfig};
use graphene_kernels::mlp::{build_fused_mlp, MlpConfig};
use graphene_kernels::softmax::{build_softmax, SoftmaxConfig};
use graphene_sim::PlanCache;
use graphene_sym::{BinOp, IntExpr};

fn paper_kernels() -> Vec<(Kernel, Arch)> {
    let cfg = GemmConfig::cublas_like(256, 256, 64);
    vec![
        (build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86),
        (build_gemm_double_buffered(&cfg, Epilogue::None), Arch::Sm86),
        (build_fused_mlp(Arch::Sm86, &MlpConfig::paper(256, 2)), Arch::Sm86),
        (build_fused_lstm(Arch::Sm86, &LstmConfig::paper(128)), Arch::Sm86),
        (build_fused_fmha(Arch::Sm86, &FmhaConfig::mlperf_bert()), Arch::Sm86),
        (build_layernorm(Arch::Sm86, &LayernormConfig::new(64, 1024)), Arch::Sm86),
        (build_softmax(Arch::Sm86, &SoftmaxConfig::new(64, 512)), Arch::Sm86),
    ]
}

/// The headline acceptance criterion: for every paper kernel, the proof
/// report contains no sampled conflict grade, no sampled race pair, and
/// no merely-witnessed bounds verdict — every verdict is a proof, with
/// no enumeration-at-two-iterations or one-warp-sampling fallback left
/// anywhere.
#[test]
fn every_paper_kernel_is_fully_proven() {
    let (mut total_sites, mut total_pairs) = (0usize, 0usize);
    for (kernel, arch) in paper_kernels() {
        let r = prove_kernel(&kernel, arch);
        total_sites += r.conflicts.len();
        total_pairs += r.races.pairs();
        for s in &r.conflicts {
            assert!(
                s.provenance.is_proven(),
                "{}: %{} in `{}` fell back to sampling",
                kernel.name,
                s.tensor,
                s.spec
            );
        }
        assert!(
            r.races.all_proven() && r.races.races_reported == 0,
            "{}: race pairs not fully proven: {:?}",
            kernel.name,
            r.races
        );
        for b in &r.bounds {
            assert_eq!(
                b.status,
                BoundsStatus::Proven,
                "{}: %{} in `{}` only {}",
                kernel.name,
                b.tensor,
                b.spec,
                b.status.label()
            );
        }
        assert!(!r.bounds.is_empty() && r.bounds_clean(), "{}", kernel.name);
    }
    assert!(total_sites > 0 && total_pairs > 0, "suite exercised nothing");
}

/// The swizzled-staging kernels achieve *proven conflict-freedom* —
/// every shared-memory access site provably needs zero extra
/// transactions, for all warps and all loop iterations. (The fused MLP,
/// LSTM, and FMHA schedules keep a few residual proven 2× sites by
/// design; their grades are covered by the provenance test above.)
#[test]
fn swizzled_kernels_prove_conflict_freedom() {
    let cfg = GemmConfig::cublas_like(256, 256, 64);
    let kernels = vec![
        (build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86),
        (build_gemm_double_buffered(&cfg, Epilogue::None), Arch::Sm86),
        (build_layernorm(Arch::Sm86, &LayernormConfig::new(64, 1024)), Arch::Sm86),
        (build_softmax(Arch::Sm86, &SoftmaxConfig::new(64, 512)), Arch::Sm86),
    ];
    for (kernel, arch) in kernels {
        let r = prove_kernel(&kernel, arch);
        assert!(
            r.conflicts_proven_free(),
            "{}: {:#?}",
            kernel.name,
            r.conflicts.iter().filter(|s| !s.conflict_free()).collect::<Vec<_>>()
        );
    }
}

/// The Volta register-staged GEMM keeps one residual 2× conflict on its
/// `%Ast` staging at this tile shape — and the engine *proves* that
/// grade rather than sampling it: a proven-conflicted verdict is just as
/// much a proof as a proven-free one.
#[test]
fn volta_gemm_grades_are_proofs_even_when_conflicted() {
    let kernel = build_gemm(Arch::Sm70, &GemmConfig::small(64, 64, 64), Epilogue::None);
    let r = prove_kernel(&kernel, Arch::Sm70);
    assert!(!r.conflicts.is_empty());
    assert!(r.conflicts.iter().all(|s| s.provenance.is_proven()), "{:#?}", r.conflicts);
    assert!(r.races.all_proven(), "{:?}", r.races);
    assert!(r.bounds.iter().all(|b| b.status == BoundsStatus::Proven), "{:#?}", r.bounds);
}

/// Shifts every view of every root in the given memory space so the
/// accesses escape their allocations, and returns the root names.
fn plant_oob(kernel: &mut Kernel, space: MemSpace) -> Vec<String> {
    let victims: Vec<TensorId> = kernel
        .module
        .tensors()
        .filter(|(_, d)| d.base.is_some())
        .map(|(id, _)| id)
        .filter(|&id| {
            let root = kernel.module.root_of(id);
            kernel.module[root].mem == space
        })
        .collect();
    assert!(!victims.is_empty(), "kernel has views in the target space");
    let mut names = Vec::new();
    for id in victims {
        let root = kernel.module.root_of(id);
        names.push(kernel.module[root].name.clone());
        let off = kernel.module[id].offset.clone();
        kernel.module.tensor_mut(id).offset =
            IntExpr::bin(BinOp::Add, off, IntExpr::constant(1 << 20));
    }
    names.sort();
    names.dedup();
    names
}

/// A doctored shared-memory view that escapes its allocation is caught
/// by `GRA015` as an error naming the tensor.
#[test]
fn planted_shared_oob_trips_gra015() {
    let mut kernel = build_gemm(Arch::Sm86, &GemmConfig::small(64, 64, 64), Epilogue::None);
    let names = plant_oob(&mut kernel, MemSpace::Shared);
    let diags = analyze_kernel(&kernel, Arch::Sm86);
    let oob: Vec<_> = diags.iter().filter(|d| d.code == "GRA015").collect();
    assert!(!oob.is_empty(), "expected GRA015, got: {diags:#?}");
    assert!(oob.iter().all(|d| d.severity == Severity::Error));
    assert!(
        oob.iter().any(|d| names.iter().any(|n| d.message.contains(&format!("%{n}")))),
        "GRA015 should name a doctored root {names:?}: {oob:#?}"
    );
    assert!(oob.iter().any(|d| d.message.contains("escapes its allocation")), "{oob:#?}");
}

/// Same for a global view: bounds proofs cover global roots too.
#[test]
fn planted_global_oob_trips_gra015() {
    let mut kernel = build_gemm(Arch::Sm86, &GemmConfig::small(64, 64, 64), Epilogue::None);
    plant_oob(&mut kernel, MemSpace::Global);
    let diags = analyze_kernel(&kernel, Arch::Sm86);
    assert!(
        diags.iter().any(|d| d.code == "GRA015" && d.severity == Severity::Error),
        "expected GRA015, got: {diags:#?}"
    );
}

/// The un-doctored kernels carry no GRA015 at all (proven in-bounds),
/// so the planted defects above are what trips the code.
#[test]
fn shipped_kernels_report_no_gra015() {
    for (kernel, arch) in paper_kernels() {
        let diags = analyze_kernel(&kernel, arch);
        assert!(
            diags.iter().all(|d| d.code != "GRA015"),
            "{}: unexpected GRA015: {diags:#?}",
            kernel.name
        );
    }
}

/// Swizzle synthesis closes the loop with the hand-swizzled builders:
/// on the *unswizzled* GEMM, every conflicted shared staging root admits
/// a synthesized non-identity swizzle, and the builder's own swizzled
/// build — the schedule the tuner used to find by search — achieves
/// exactly the conflict-freedom the synthesized swizzle proves. The
/// synthesized swizzle therefore matches or beats every tuned swizzle
/// candidate of the old two-point search axis.
#[test]
fn synthesis_reproduces_the_tuned_swizzle() {
    let mut cfg = GemmConfig::small(64, 64, 64);
    cfg.swizzle = false;
    let naive = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let naive_sites = grade_sites(&naive, Arch::Sm86);
    let conflicted: Vec<TensorId> = {
        let mut roots: Vec<TensorId> =
            naive_sites.iter().filter(|s| !s.conflict_free()).map(|s| s.root).collect();
        roots.sort();
        roots.dedup();
        roots
    };
    assert!(!conflicted.is_empty(), "naive staging should conflict");
    let mut plans = PlanCache::new();
    for root in conflicted {
        let sw = synthesize_for_root(&naive, Arch::Sm86, root, &mut plans)
            .unwrap_or_else(|| panic!("no swizzle synthesized for %{}", naive.module[root].name));
        assert!(!sw.is_identity(), "%{} needs a real swizzle", naive.module[root].name);
    }
    // The builder's hand swizzle — the winning point of the old search
    // axis — grades proven conflict-free, i.e. no better than what
    // synthesis guarantees.
    cfg.swizzle = true;
    let tuned = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let tuned_sites = grade_sites(&tuned, Arch::Sm86);
    assert!(!tuned_sites.is_empty());
    assert!(tuned_sites.iter().all(|s| s.conflict_free() && s.provenance.is_proven()));
}
