//! The analysis pipeline over every paper-figure kernel: the shipped
//! schedules lint clean (zero errors), and targeted mutations — a
//! deleted barrier, a mislocated operand, a dropped accumulator init —
//! each trip the intended diagnostic.

use graphene_analysis::{analyze_kernel, error_count, Severity};
use graphene_ir::body::{Stmt, SyncScope};
use graphene_ir::spec::SpecKind;
use graphene_ir::{Arch, Kernel, MemSpace};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{
    build_batched_gemm, build_gemm, build_gemm_double_buffered, build_gemm_no_ldmatrix,
    build_gemm_parametric_m, build_gemm_partial_m, Epilogue, GemmConfig,
};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_kernels::lstm::{build_fused_lstm, LstmConfig};
use graphene_kernels::mlp::{build_fused_mlp, MlpConfig};
use graphene_kernels::softmax::{build_softmax, SoftmaxConfig};

fn assert_lints_clean(kernel: &Kernel, arch: Arch) {
    let diags = analyze_kernel(kernel, arch);
    let errors: Vec<_> = diags.iter().filter(|d| d.severity == Severity::Error).collect();
    assert!(errors.is_empty(), "{} should lint clean, got: {errors:#?}", kernel.name);
}

#[test]
fn gemm_kernels_lint_clean() {
    let cfg = GemmConfig::small(64, 64, 64);
    assert_lints_clean(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86);
    assert_lints_clean(&build_gemm(Arch::Sm86, &cfg, Epilogue::BiasRelu), Arch::Sm86);
    assert_lints_clean(&build_gemm(Arch::Sm70, &cfg, Epilogue::None), Arch::Sm70);
    assert_lints_clean(&build_gemm_double_buffered(&cfg, Epilogue::None), Arch::Sm86);
    assert_lints_clean(&build_gemm_no_ldmatrix(&cfg, Epilogue::None), Arch::Sm86);
    assert_lints_clean(
        &build_gemm_partial_m(&GemmConfig::small(48, 64, 64), Epilogue::None),
        Arch::Sm86,
    );
    assert_lints_clean(&build_gemm_parametric_m(&cfg, Epilogue::None), Arch::Sm86);
    assert_lints_clean(&build_batched_gemm(Arch::Sm86, &cfg, 3), Arch::Sm86);
}

#[test]
fn paper_figure_pipelines_lint_clean() {
    assert_lints_clean(&build_fused_mlp(Arch::Sm86, &MlpConfig::paper(256, 2)), Arch::Sm86);
    assert_lints_clean(&build_fused_lstm(Arch::Sm86, &LstmConfig::paper(128)), Arch::Sm86);
    assert_lints_clean(&build_fused_fmha(Arch::Sm86, &FmhaConfig::mlperf_bert()), Arch::Sm86);
    assert_lints_clean(&build_layernorm(Arch::Sm86, &LayernormConfig::new(64, 1024)), Arch::Sm86);
    assert_lints_clean(&build_softmax(Arch::Sm86, &SoftmaxConfig::new(64, 512)), Arch::Sm86);
}

/// Applies `f` to every statement list in the kernel body, recursively.
fn for_each_list(stmts: &mut Vec<Stmt>, f: &mut impl FnMut(&mut Vec<Stmt>)) {
    f(stmts);
    for s in stmts {
        match s {
            Stmt::For { body, .. } | Stmt::If { then: body, .. } => for_each_list(body, f),
            Stmt::Spec(spec) => {
                if let Some(b) = &mut spec.body {
                    for_each_list(&mut b.stmts, f);
                }
            }
            _ => {}
        }
    }
}

fn count_block_syncs(kernel: &Kernel) -> usize {
    kernel.body.count_stmts(|s| matches!(s, Stmt::Sync(SyncScope::Block)))
}

/// Removes the `n`-th block-level sync (in pre-order list order).
fn remove_block_sync(kernel: &mut Kernel, n: usize) {
    let mut idx = 0usize;
    for_each_list(&mut kernel.body.stmts, &mut |stmts| {
        stmts.retain(|s| {
            if matches!(s, Stmt::Sync(SyncScope::Block)) {
                let hit = idx == n;
                idx += 1;
                !hit
            } else {
                true
            }
        });
    });
}

/// The acceptance criterion of the race detector: removing *any single*
/// block-level barrier from the software-pipelined GEMM produces a
/// `GRA010` error naming the shared tensor and both conflicting specs.
#[test]
fn every_barrier_in_pipelined_gemm_is_load_bearing() {
    let cfg = GemmConfig::small(64, 64, 64);
    let baseline = build_gemm_double_buffered(&cfg, Epilogue::None);
    let n = count_block_syncs(&baseline);
    assert!(n >= 2, "pipelined GEMM should have block barriers, found {n}");
    for i in 0..n {
        let mut mutant = build_gemm_double_buffered(&cfg, Epilogue::None);
        remove_block_sync(&mut mutant, i);
        assert_eq!(count_block_syncs(&mutant), n - 1);
        let diags = analyze_kernel(&mutant, Arch::Sm86);
        let races: Vec<_> =
            diags.iter().filter(|d| d.code == "GRA010" && d.severity == Severity::Error).collect();
        assert!(!races.is_empty(), "deleting barrier {i} of {n} must race, got: {diags:#?}");
        // The report names the shared tensor and both conflicting specs.
        let msg = &races[0].message;
        assert!(
            ["As0", "As1", "Bs0", "Bs1"].iter().any(|t| msg.contains(t)),
            "race should name a shared stage buffer: {msg}"
        );
        assert_eq!(msg.matches('`').count(), 4, "race should quote both specs: {msg}");
    }
}

/// Same criterion for the single-buffered GEMM's two barriers.
#[test]
fn every_barrier_in_plain_gemm_is_load_bearing() {
    let cfg = GemmConfig::small(64, 64, 64);
    let n = count_block_syncs(&build_gemm(Arch::Sm86, &cfg, Epilogue::None));
    for i in 0..n {
        let mut mutant = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
        remove_block_sync(&mut mutant, i);
        let diags = analyze_kernel(&mutant, Arch::Sm86);
        assert!(
            diags.iter().any(|d| d.code == "GRA010"),
            "deleting barrier {i} of {n} must race, got: {diags:#?}"
        );
    }
}

/// Moving the shared stage buffers to global memory makes the
/// `ldmatrix`/`cp.async` operands illegal: `GRA012` pinpoints the space.
#[test]
fn wrong_memory_space_is_pinpointed() {
    let cfg = GemmConfig::small(64, 64, 64);
    let mut kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let shared_ids: Vec<_> = kernel
        .module
        .tensors()
        .filter(|(_, d)| d.mem == MemSpace::Shared)
        .map(|(id, _)| id)
        .collect();
    assert!(!shared_ids.is_empty());
    for id in shared_ids {
        kernel.module.tensor_mut(id).mem = MemSpace::Global;
    }
    let diags = analyze_kernel(&kernel, Arch::Sm86);
    let spaces: Vec<_> = diags.iter().filter(|d| d.code == "GRA012").collect();
    assert!(!spaces.is_empty(), "expected GRA012, got: {diags:#?}");
    assert!(
        spaces.iter().any(|d| d.message.contains("requires Shared")),
        "GRA012 should state the required space: {spaces:#?}"
    );
}

/// Dropping the accumulator `Init` makes the first `mma` read garbage:
/// `GRA013` names the accumulator.
#[test]
fn dropped_init_is_reported() {
    let cfg = GemmConfig::small(64, 64, 64);
    let mut kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    for_each_list(&mut kernel.body.stmts, &mut |stmts| {
        stmts.retain(
            |s| !matches!(s, Stmt::Spec(spec) if matches!(spec.kind, SpecKind::Init { .. })),
        );
    });
    let diags = analyze_kernel(&kernel, Arch::Sm86);
    let uninit: Vec<_> = diags.iter().filter(|d| d.code == "GRA013").collect();
    assert!(!uninit.is_empty(), "expected GRA013, got: {diags:#?}");
    assert!(uninit[0].message.contains("%acc"), "{}", uninit[0].message);
}

/// Staging without the paper's swizzle produces measurable bank
/// conflicts: `GRA014` grades them.
#[test]
fn unswizzled_gemm_reports_bank_conflicts() {
    let mut cfg = GemmConfig::small(64, 64, 64);
    cfg.swizzle = false;
    let diags = analyze_kernel(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86);
    assert!(
        diags.iter().any(|d| d.code == "GRA014"),
        "unswizzled staging should conflict, got: {diags:#?}"
    );
    // Bank conflicts are performance findings, never errors.
    assert!(diags.iter().filter(|d| d.code == "GRA014").all(|d| d.severity != Severity::Error));
}

/// Back-to-back barriers with no intervening shared traffic are
/// flagged as redundant (`GRA011`, warning).
#[test]
fn double_barrier_is_flagged_redundant() {
    let cfg = GemmConfig::small(64, 64, 64);
    let mut kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    // Duplicate every block-level sync in place.
    for_each_list(&mut kernel.body.stmts, &mut |stmts| {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts.drain(..) {
            let dup = matches!(s, Stmt::Sync(SyncScope::Block));
            out.push(s.clone());
            if dup {
                out.push(s);
            }
        }
        *stmts = out;
    });
    let diags = analyze_kernel(&kernel, Arch::Sm86);
    let redundant: Vec<_> = diags.iter().filter(|d| d.code == "GRA011").collect();
    assert!(!redundant.is_empty(), "expected GRA011, got: {diags:#?}");
    assert!(redundant.iter().all(|d| d.severity == Severity::Warn));
    // The original schedule has no redundant barrier.
    let clean = analyze_kernel(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86);
    assert!(clean.iter().all(|d| d.code != "GRA011"));
}

/// JSON rendering is wired through for CI consumption.
#[test]
fn json_rendering_counts_errors() {
    let cfg = GemmConfig::small(64, 64, 64);
    let mut mutant = build_gemm_double_buffered(&cfg, Epilogue::None);
    remove_block_sync(&mut mutant, 0);
    let diags = analyze_kernel(&mutant, Arch::Sm86);
    let json = graphene_analysis::render_json(&mutant.name, &diags);
    assert!(json.contains("\"GRA010\""));
    assert!(json.contains(&format!("\"errors\":{}", error_count(&diags))));
    assert!(error_count(&diags) > 0);
}
