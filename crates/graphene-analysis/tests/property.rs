//! Property test: every well-formed kernel the builders produce, across
//! a grid of tile configurations, passes the race detector (and the
//! rest of the pipeline) with zero error diagnostics. Barrier placement
//! in the builders is by construction, not by configuration, so no tile
//! shape should be able to introduce a hazard.

use graphene_analysis::{analyze_kernel, Severity};
use graphene_ir::Arch;
use graphene_kernels::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use proptest::prelude::*;

/// Well-formed Ampere tile grids: warp grid × K-slice count × bk.
fn arb_ampere_cfg() -> impl Strategy<Value = GemmConfig> {
    (
        1i64..=2,
        1i64..=2,
        1i64..=3,
        prop_oneof![Just(16i64), Just(32)],
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(wgm, wgn, kmul, bk, swizzle)| {
            let (wm, wn) = (16, 16);
            let (bm, bn) = (wm * wgm, wn * wgn);
            GemmConfig { m: bm * 2, n: bn * 2, k: bk * kmul, bm, bn, bk, wm, wn, swizzle }
        })
}

fn assert_no_errors(arch: Arch, kernel: &graphene_ir::Kernel) {
    let errors: Vec<_> = analyze_kernel(kernel, arch)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{} has errors: {errors:#?}", kernel.name);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The single-buffered schedule is race-free for every tile shape,
    /// with and without swizzling.
    #[test]
    fn gemm_race_free_across_tile_grid(cfg in arb_ampere_cfg()) {
        assert_no_errors(Arch::Sm86, &build_gemm(Arch::Sm86, &cfg, Epilogue::None));
    }

    /// So is the software-pipelined (double-buffered) schedule — the
    /// one whose barrier discipline is subtlest.
    #[test]
    fn pipelined_gemm_race_free_across_tile_grid(cfg in arb_ampere_cfg()) {
        assert_no_errors(Arch::Sm86, &build_gemm_double_buffered(&cfg, Epilogue::None));
    }

    /// Volta's register-staged path too.
    #[test]
    fn volta_gemm_race_free_across_tile_grid(
        (gm, gn, bk) in (1i64..=2, 1i64..=2, prop_oneof![Just(8i64), Just(16)])
    ) {
        let cfg = GemmConfig {
            m: 32 * gm, n: 32 * gn, k: bk * 2,
            bm: 32, bn: 32, bk, wm: 32, wn: 32, swizzle: true,
        };
        assert_no_errors(Arch::Sm70, &build_gemm(Arch::Sm70, &cfg, Epilogue::None));
    }
}
