//! Kernel-level proof reporting: conflict-freedom, race-freedom, and
//! in-bounds proofs (`GRA015`), plus F₂ swizzle synthesis.
//!
//! [`prove_kernel`] aggregates the three symbolic analyses into one
//! [`ProofReport`]:
//!
//! - **Bank conflicts** — every shared-memory access site graded with
//!   provenance ([`crate::banks::grade_sites_cached`]): `proven-linear`
//!   (F₂ rank, all warps/iterations), `proven-enumerated` (complete
//!   case analysis), or `sampled` (one warp — evidence, not proof).
//! - **Races** — per-pair accounting from the race detector
//!   ([`crate::races::check_races_summary`]): pairs proven disjoint by
//!   the symbolic F₂ system, proven by exhaustive enumeration, or
//!   merely sampled at two loop iterations.
//! - **Bounds (`GRA015`)** — every shared- and global-memory access
//!   proven inside its root allocation by symbolic bounds propagation
//!   (`offset.is_nonneg()` and `offset.upper_bound()` against the
//!   root's scalar length), or — when the offset is outside the
//!   provable fragment — *witnessed* in-bounds by enumerating the
//!   extreme environments (first/last block, first/last loop
//!   iteration). Violations are `GRA015` errors.
//!
//! [`synthesize_for_root`] solves the F₂ system of every access site
//! of one shared root for a single XOR swizzle making all of them
//! conflict-free ([`graphene_layout::synthesize_swizzle`]) — the
//! constructive counterpart of the rank proof, used by the autotuner to
//! skip the swizzle search axis entirely.

use crate::banks::{grade_sites_cached, SiteGrade};
use crate::races::{check_races_summary, RaceSummary};
use crate::walk::{eval_guard, thread_dependent};
use graphene_ir::atomic::{match_atomic, registry, AtomicSpec};
use graphene_ir::body::{Predicate, Stmt};
use graphene_ir::printer::render_spec_header;
use graphene_ir::threads::ThreadLevel;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace, Module, TensorId};
use graphene_layout::{synthesize_swizzle, Swizzle};
use graphene_sim::{exec_lanes, lane_addresses_cached, linear_site, root_len, PlanCache};
use std::collections::{HashMap, HashSet};

/// How an access site's in-bounds verdict was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsStatus {
    /// Proven: `0 <= addr < len` for every thread, block, and loop
    /// iteration — by guard-aware bounds propagation over the offset
    /// expression, or by exhaustively enumerating every value
    /// combination of its variables (a complete case analysis).
    Proven,
    /// Checked by enumerating the extreme environments (first/last
    /// block and loop iterations) — strong evidence, not a proof.
    Witnessed,
    /// An out-of-bounds address was found (reported as `GRA015`).
    Violation,
}

impl BoundsStatus {
    /// Stable lower-case label (used in diagnostics and JSON).
    pub fn label(self) -> &'static str {
        match self {
            BoundsStatus::Proven => "proven",
            BoundsStatus::Witnessed => "witnessed",
            BoundsStatus::Violation => "violation",
        }
    }
}

/// One access site's in-bounds verdict.
#[derive(Debug, Clone)]
pub struct BoundsCheck {
    /// Root tensor being accessed.
    pub root: TensorId,
    /// Root tensor name (for rendering).
    pub tensor: String,
    /// Rendered spec header of the access site.
    pub spec: String,
    /// Root allocation length in scalars.
    pub len: i64,
    /// The verdict.
    pub status: BoundsStatus,
    /// For violations: one offending `(thread, address)` witness.
    pub witness: Option<(i64, i64)>,
}

/// The complete proof accounting for one kernel.
#[derive(Debug, Clone)]
pub struct ProofReport {
    /// Every shared-memory access site's conflict grade + provenance.
    pub conflicts: Vec<SiteGrade>,
    /// Race-detector per-pair proof accounting.
    pub races: RaceSummary,
    /// Every shared/global access site's bounds verdict.
    pub bounds: Vec<BoundsCheck>,
}

impl ProofReport {
    /// Every shared-memory site is conflict-free with a *proof* (no
    /// sampling fallback, no residual conflicts).
    pub fn conflicts_proven_free(&self) -> bool {
        self.conflicts.iter().all(|s| s.provenance.is_proven() && s.conflict_free())
    }

    /// No bounds violations were found.
    pub fn bounds_clean(&self) -> bool {
        self.bounds.iter().all(|b| b.status != BoundsStatus::Violation)
    }

    /// Renders the report as the human-readable text block appended by
    /// `lint --prove`: per-site conflict grades with provenance, the
    /// race-pair proof accounting, and the bounds verdicts.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "proof (F2 symbolic): conflicts {}, bounds {}",
            if self.conflicts_proven_free() { "proven free" } else { "NOT proven free" },
            if self.bounds_clean() { "proven in-bounds" } else { "NOT proven" },
        );
        for s in &self.conflicts {
            let _ = writeln!(
                out,
                "  conflict %{} in `{}`: {}/{} transactions [{}]",
                s.tensor,
                s.spec,
                s.actual,
                s.ideal,
                s.provenance.label()
            );
        }
        let races = &self.races;
        let _ = writeln!(
            out,
            "  races: {} pairs ({} proven-linear, {} proven-enumerated, {} sampled), {} reported",
            races.pairs(),
            races.pairs_proven_linear,
            races.pairs_proven_enumerated,
            races.pairs_sampled,
            races.races_reported
        );
        for b in &self.bounds {
            let _ = writeln!(
                out,
                "  bounds %{} in `{}`: len {} [{}]",
                b.tensor,
                b.spec,
                b.len,
                b.status.label()
            );
        }
        out
    }

    /// Renders the report as the `"proof"` JSON object embedded by
    /// `lint --prove --emit json` (and by the serve daemon's `lint`
    /// responses — both surfaces share this one rendering).
    pub fn render_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let conflicts: Vec<String> = self
            .conflicts
            .iter()
            .map(|s| {
                format!(
                    "{{\"tensor\":\"{}\",\"spec\":\"{}\",\"ideal\":{},\"actual\":{},\"provenance\":\"{}\"}}",
                    esc(&s.tensor),
                    esc(&s.spec),
                    s.ideal,
                    s.actual,
                    s.provenance.label()
                )
            })
            .collect();
        let bounds: Vec<String> = self
            .bounds
            .iter()
            .map(|b| {
                format!(
                    "{{\"tensor\":\"{}\",\"spec\":\"{}\",\"len\":{},\"status\":\"{}\"}}",
                    esc(&b.tensor),
                    esc(&b.spec),
                    b.len,
                    b.status.label()
                )
            })
            .collect();
        let races = &self.races;
        format!(
            "{{\"conflicts\":[{}],\"conflicts_proven_free\":{},\
             \"races\":{{\"pairs_proven_linear\":{},\"pairs_proven_enumerated\":{},\
             \"pairs_sampled\":{},\"races_reported\":{},\"all_proven\":{}}},\
             \"bounds\":[{}],\"bounds_clean\":{}}}",
            conflicts.join(","),
            self.conflicts_proven_free(),
            races.pairs_proven_linear,
            races.pairs_proven_enumerated,
            races.pairs_sampled,
            races.races_reported,
            races.all_proven(),
            bounds.join(","),
            self.bounds_clean()
        )
    }
}

/// Runs every proof pass over a kernel.
pub fn prove_kernel(kernel: &Kernel, arch: Arch) -> ProofReport {
    prove_kernel_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`prove_kernel`], reusing an externally owned [`PlanCache`].
pub fn prove_kernel_cached(kernel: &Kernel, arch: Arch, plans: &mut PlanCache) -> ProofReport {
    ProofReport {
        conflicts: grade_sites_cached(kernel, arch, plans),
        races: check_races_summary(kernel, arch, plans).1,
        bounds: bounds_checks_cached(kernel, arch, plans),
    }
}

/// Checks every shared/global access against its root allocation,
/// reporting out-of-bounds accesses as `GRA015` errors.
pub fn check_bounds(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    check_bounds_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`check_bounds`], reusing an externally owned [`PlanCache`].
pub fn check_bounds_cached(kernel: &Kernel, arch: Arch, plans: &mut PlanCache) -> Vec<Diagnostic> {
    bounds_checks_cached(kernel, arch, plans)
        .into_iter()
        .filter(|b| b.status == BoundsStatus::Violation)
        .map(|b| {
            let at = b
                .witness
                .map(|(t, a)| format!(" (thread {t} reaches offset {a})"))
                .unwrap_or_default();
            Diagnostic::error(
                "GRA015",
                format!(
                    "out-of-bounds access: %{} in `{}` escapes its allocation of {} \
                     scalars{at}",
                    b.tensor, b.spec, b.len,
                ),
            )
        })
        .collect()
}

/// The bounds verdict of every shared- and global-memory access site.
pub fn bounds_checks_cached(
    kernel: &Kernel,
    arch: Arch,
    plans: &mut PlanCache,
) -> Vec<BoundsCheck> {
    let mut cx = BoundsCx {
        kernel,
        module: &kernel.module,
        reg: registry(arch),
        plans,
        loops: Vec::new(),
        guards: Vec::new(),
        seen: HashSet::new(),
        checks: Vec::new(),
    };
    cx.walk(&kernel.body.stmts);
    cx.checks
}

struct BoundsCx<'k, 'p> {
    kernel: &'k Kernel,
    module: &'k Module,
    reg: Vec<AtomicSpec>,
    plans: &'p mut PlanCache,
    /// Enclosing `for` nesting as `(var, extent)`.
    loops: Vec<(String, i64)>,
    guards: Vec<Predicate>,
    seen: HashSet<(TensorId, String)>,
    checks: Vec<BoundsCheck>,
}

impl BoundsCx<'_, '_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::For { var, extent, body, .. } => {
                    self.loops.push((var.clone(), *extent));
                    self.walk(body);
                    self.loops.pop();
                }
                Stmt::If { cond, then } => {
                    self.guards.push(cond.clone());
                    self.walk(then);
                    self.guards.pop();
                }
                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => self.walk(&body.stmts),
                    None => self.check_spec(spec),
                },
                _ => {}
            }
        }
    }

    fn check_spec(&mut self, spec: &graphene_ir::Spec) {
        let module = self.module;
        let Some(&exec) = spec.exec.last() else { return };
        let tt = &module[exec];
        if tt.level != ThreadLevel::Thread || match_atomic(spec, module, &self.reg).is_none() {
            return;
        }
        for &id in spec.ins.iter().chain(spec.outs.iter()) {
            let root = module.root_of(id);
            let mem = module[root].mem;
            if mem != MemSpace::Shared && mem != MemSpace::Global {
                continue;
            }
            let header = render_spec_header(module, spec);
            if !self.seen.insert((id, header.clone())) {
                continue;
            }
            let len = root_len(&module[root].ty) as i64;
            let (status, witness) = self.verdict(id, exec, len);
            self.checks.push(BoundsCheck {
                root,
                tensor: module[root].name.clone(),
                spec: header,
                len,
                status,
                witness,
            });
        }
    }

    /// Proof first, witness enumeration second.
    ///
    /// The proof ignores guards (they only shrink the accessed set) and
    /// is swizzle-safe: the root length is rounded up to the swizzle
    /// period and a swizzle permutes addresses within aligned
    /// period-sized blocks, so pre-swizzle bounds imply post-swizzle
    /// bounds.
    fn verdict(
        &mut self,
        id: TensorId,
        exec: graphene_ir::ThreadId,
        len: i64,
    ) -> (BoundsStatus, Option<(i64, i64)>) {
        let module = self.module;
        let offset = &module[id].offset;
        let plan = self.plans.plan(id, module).clone();
        let min_rel = plan.rel.iter().copied().min().unwrap_or(0);
        let max_rel = plan.rel.iter().copied().max().unwrap_or(0);
        // Dominating `var < c` guards tighten that variable's bound —
        // sound for the proof because guards only shrink the accessed
        // set (e.g. the tail-prefetch guard of a double-buffered loop).
        let mut tighter = HashMap::new();
        for g in &self.guards {
            if let (graphene_sym::IntExpr::Var(info), Some(c)) = (&g.lhs, g.rhs.as_const()) {
                let entry = tighter.entry(info.name.clone()).or_insert(c);
                *entry = (*entry).min(c);
            }
        }
        if offset.is_nonneg() && min_rel >= 0 {
            if let Some(ub) = offset.upper_bound_with(&tighter) {
                if (ub - 1).saturating_add(max_rel) < len {
                    return (BoundsStatus::Proven, None);
                }
            }
        }
        // Interval arithmetic failed (typically on correlated `x%a` /
        // `x/a` re-indexing terms it must over-approximate). Second
        // route: when every variable of the offset besides the thread id
        // is an enclosing loop counter or the block id, enumerating all
        // their value combinations (within a budget) is a complete case
        // analysis — a proof. Otherwise fall back to corner witnessing.
        let tt = &module[exec];
        let grid = self.kernel.grid_size();
        let vars = offset.free_vars();
        let mut domains: Vec<(String, i64)> = Vec::new();
        let mut enumerable = true;
        for v in &vars {
            if v == "threadIdx.x" {
                continue;
            } else if v == "blockIdx.x" {
                domains.push((v.clone(), grid.max(1)));
            } else if let Some((_, e)) = self.loops.iter().find(|(lv, _)| lv == v) {
                domains.push((v.clone(), (*e).max(1)));
            } else {
                enumerable = false; // dynamic parameter — value unknown
                break;
            }
        }
        let combos = domains
            .iter()
            .try_fold(1i64, |p, (_, e)| p.checked_mul(*e).filter(|&c| c <= MAX_BOUNDS_COMBOS));
        let exhaustive = enumerable && combos.is_some();
        let envs: Vec<HashMap<String, i64>> = if let (true, Some(combos)) = (exhaustive, combos) {
            (0..combos)
                .map(|c| {
                    let mut env = HashMap::from([("blockIdx.x".to_string(), 0)]);
                    let mut rem = c;
                    for (v, e) in &domains {
                        env.insert(v.clone(), rem % e);
                        rem /= e;
                    }
                    env
                })
                .collect()
        } else {
            // Corner environments: every combination of {first, last}
            // block and {first, last} value of each loop counter.
            let corners = 1usize << (self.loops.len() + 1).min(12);
            (0..corners)
                .map(|corner| {
                    let mut env = HashMap::new();
                    env.insert(
                        "blockIdx.x".to_string(),
                        if corner & 1 == 0 { 0 } else { (grid - 1).max(0) },
                    );
                    for (k, (var, extent)) in self.loops.iter().enumerate() {
                        let hi = (corner >> (k + 1)) & 1 == 1;
                        env.insert(var.clone(), if hi { (extent - 1).max(0) } else { 0 });
                    }
                    env
                })
                .collect()
        };
        let all_lanes = exec_lanes(tt, tt.count() as usize);
        let (thread_guards, block_guards): (Vec<_>, Vec<_>) =
            self.guards.iter().partition(|g| thread_dependent(g));
        for mut env in envs {
            // Thread-independent guards false under this environment
            // mean the access does not execute here; thread-dependent
            // guards filter lanes.
            if block_guards.iter().any(|g| eval_guard(g, &env) == Some(false)) {
                continue;
            }
            let lanes: Vec<i64> = all_lanes
                .iter()
                .copied()
                .filter(|&t| {
                    thread_guards.iter().all(|g| {
                        env.insert("threadIdx.x".into(), t);
                        let taken = eval_guard(g, &env).unwrap_or(true);
                        env.remove("threadIdx.x");
                        taken
                    })
                })
                .collect();
            let Ok(per_lane) = lane_addresses_cached(self.plans, id, module, &lanes, &env) else {
                continue;
            };
            for (t, addrs) in per_lane {
                for a in addrs {
                    if a < 0 || a >= len {
                        return (BoundsStatus::Violation, Some((t, a)));
                    }
                }
            }
        }
        if exhaustive {
            (BoundsStatus::Proven, None)
        } else {
            (BoundsStatus::Witnessed, None)
        }
    }
}

/// Enumeration budget for the exhaustive bounds proof: the largest
/// variable-value cartesian product worth exhausting.
const MAX_BOUNDS_COMBOS: i64 = 4096;

/// Solves for one XOR swizzle making *every* access site of `root`
/// bank-conflict-free, or `None` when some site is outside the F₂
/// fragment or no swizzle works.
///
/// The sites are abstracted pre-swizzle, so this is meaningful on an
/// unswizzled build: the tuner builds a candidate with the identity
/// swizzle, synthesizes here, and applies the result — skipping the
/// swizzle search axis and the conflict simulation entirely.
pub fn synthesize_for_root(
    kernel: &Kernel,
    arch: Arch,
    root: TensorId,
    plans: &mut PlanCache,
) -> Option<Swizzle> {
    let module = &kernel.module;
    let reg = registry(arch);
    let mut sites = Vec::new();
    let mut stack: Vec<&[Stmt]> = vec![&kernel.body.stmts];
    while let Some(stmts) = stack.pop() {
        for s in stmts {
            match s {
                Stmt::For { body, .. } => stack.push(body),
                Stmt::If { then, .. } => stack.push(then),
                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => stack.push(&body.stmts),
                    None => {
                        let Some(&exec) = spec.exec.last() else { continue };
                        let tt = &module[exec];
                        if tt.level != ThreadLevel::Thread
                            || match_atomic(spec, module, &reg).is_none()
                        {
                            continue;
                        }
                        for &id in spec.ins.iter().chain(spec.outs.iter()) {
                            if module.root_of(id) != root {
                                continue;
                            }
                            let bytes = module[id].ty.scalar_type().bytes();
                            let ls = linear_site(plans, id, module, tt, bytes)?;
                            sites.push(ls.site);
                        }
                    }
                },
                _ => {}
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    synthesize_swizzle(&sites)
}
