//! Symbolic race disjointness over F₂ (the race detector's proof rule).
//!
//! Two shared-memory accesses of the same root race only if some
//! address is touched by two *different* threads. When both accesses'
//! offsets are XOR-affine in the bits of `threadIdx.x`
//! ([`graphene_sym::linearize`]) and their vector offsets
//! XOR-decompose, the collision condition
//! `addr_A(t₁, j_A) == addr_B(t₂, j_B)` is one F₂ linear system over
//! the bits of `(t₁, t₂, j_A, j_B)`:
//!
//! ```text
//! [A-tid columns | B-tid columns | Δ_A | Δ_B] · x  =  adj_A[0] ⊕ adj_B[0]
//! ```
//!
//! solved by [`graphene_layout::solve_f2`]. The pair is proven
//! race-free when the system is infeasible, or when every solution
//! forces `t₁ == t₂` ([`graphene_layout::solutions_force_equal`]) —
//! same-thread reuse is not a race. Crucially, a `threadIdx.x` bit
//! absent from an offset contributes a **zero column**, not no column:
//! a dropped bit means the address aliases across threads, and the
//! solver must be allowed to exploit it (see
//! `aliasing_addresses_do_not_force_equal` in `graphene-layout`).
//!
//! The root's swizzle is dropped: both accesses go through the same
//! bijection, so post-swizzle collisions coincide with pre-swizzle
//! ones.

use graphene_layout::{solutions_force_equal, solve_f2};
use graphene_sym::{linearize, IntExpr, XorForm};

/// Outcome of the symbolic disjointness check for one access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairProof {
    /// Proven: no address is shared by two different threads, for every
    /// thread in `[0, 2^n)` and every vector element — a complete proof
    /// independent of loop iteration.
    RaceFree,
    /// The F₂ system admits a cross-thread collision; enumeration must
    /// decide (the collision may still be filtered by guards).
    Possible,
    /// The pair is outside the F₂ fragment (non-linear offset, carrying
    /// vector offsets, non-power-of-two lane span).
    NotLinear,
}

/// Verifies `adj` is XOR-decomposable over its index bits and returns
/// the basis deltas (`adj[i] == adj[0] ⊕ ⨁_{bit k of i} deltas[k]`).
fn xor_decompose(adj: &[i64]) -> Option<Vec<i64>> {
    let n = adj.len();
    if n == 0 || !n.is_power_of_two() {
        return None;
    }
    let v = n.trailing_zeros() as usize;
    let deltas: Vec<i64> = (0..v).map(|k| adj[1 << k] ^ adj[0]).collect();
    for (i, &a) in adj.iter().enumerate() {
        let mut expect = adj[0];
        for (k, &d) in deltas.iter().enumerate() {
            if (i >> k) & 1 == 1 {
                expect ^= d;
            }
        }
        if expect != a {
            return None;
        }
    }
    Some(deltas)
}

/// One access abstracted for the pair solver: its tid-bit columns
/// (length `n`, zero-padded), vector deltas, and base address.
struct SideForm {
    tid_cols: Vec<i64>,
    deltas: Vec<i64>,
    base: i64,
}

/// Abstracts one side. `None` when outside the F₂ fragment.
fn side_form(offset: &IntExpr, rel: &[i64], n: u32) -> Option<SideForm> {
    let form: XorForm = linearize(offset)?;
    // The offset must be a function of the thread id alone — loop
    // counters or block ids would make the two sides share variables.
    if form.terms.iter().any(|t| t.var != "threadIdx.x") {
        return None;
    }
    let mut adj = Vec::with_capacity(rel.len());
    for &o in rel {
        let a = form.constant.checked_add(o)?;
        if a < 0 {
            return None;
        }
        adj.push(a);
    }
    let deltas = xor_decompose(&adj)?;
    // Carry-freedom between the variable part and the adjusted offsets:
    // `base + rel` equals `base ⊕ rel` only when their supports are
    // disjoint.
    let masks_all = form.terms.iter().fold(0i64, |m, t| m | t.mask);
    if adj.iter().fold(0i64, |m, &a| m | a) & masks_all != 0 {
        return None;
    }
    // Zero columns for tid bits absent from the form: those bits alias.
    let tid_cols =
        (0..n).map(|b| form.terms.iter().find(|t| t.bit == b).map_or(0, |t| t.mask)).collect();
    Some(SideForm { tid_cols, deltas, base: adj[0] })
}

/// Symbolically decides whether two accesses of one shared root can
/// collide across threads, for thread ids ranging over exactly
/// `[0, 2^n)` on both sides.
///
/// Returns [`PairProof::RaceFree`] only on a complete proof: the
/// result then holds for every thread pair, every vector element, and
/// — because tid-only offsets are iteration-independent — every loop
/// iteration.
pub fn prove_pair_disjoint(
    offset_a: &IntExpr,
    rel_a: &[i64],
    offset_b: &IntExpr,
    rel_b: &[i64],
    n: u32,
) -> PairProof {
    if n == 0 || n > 16 {
        return PairProof::NotLinear; // 2n tid columns must fit the solver
    }
    let (Some(a), Some(b)) = (side_form(offset_a, rel_a, n), side_form(offset_b, rel_b, n)) else {
        return PairProof::NotLinear;
    };
    let mut columns = Vec::with_capacity(2 * n as usize + a.deltas.len() + b.deltas.len());
    columns.extend_from_slice(&a.tid_cols);
    columns.extend_from_slice(&b.tid_cols);
    columns.extend_from_slice(&a.deltas);
    columns.extend_from_slice(&b.deltas);
    if columns.len() > 64 {
        return PairProof::NotLinear;
    }
    match solve_f2(&columns, a.base ^ b.base) {
        None => PairProof::RaceFree,
        Some(space) if solutions_force_equal(&space, n as usize) => PairProof::RaceFree,
        Some(_) => PairProof::Possible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_sym::IntExpr;

    fn tid(bound: i64) -> IntExpr {
        IntExpr::var_bounded("threadIdx.x", bound)
    }

    #[test]
    fn identical_linear_accesses_are_same_thread_only() {
        // Both sides write addr = t * 4: collisions force t1 == t2.
        let off = tid(32) * 4;
        assert_eq!(prove_pair_disjoint(&off, &[0], &off, &[0], 5), PairProof::RaceFree);
    }

    #[test]
    fn disjoint_halves_are_race_free() {
        // A writes [0, 32), B writes [32, 64): never the same address.
        let a = tid(32);
        let b = tid(32) + 32;
        assert_eq!(prove_pair_disjoint(&a, &[0], &b, &[0], 5), PairProof::RaceFree);
    }

    #[test]
    fn aliasing_access_is_flagged_possible() {
        // addr = (t % 16) * 2: threads t and t+16 collide.
        let off = tid(32) % 16 * 2;
        assert_eq!(prove_pair_disjoint(&off, &[0], &off, &[0], 5), PairProof::Possible);
    }

    #[test]
    fn overlapping_vectors_are_outside_the_fragment() {
        // Each thread writes 2 consecutive elements starting at t:
        // thread t's second element is thread t+1's first — an overlap
        // produced by integer carry, so the carry-freedom check rejects
        // the pair rather than mis-proving it.
        let off = tid(32);
        assert_eq!(prove_pair_disjoint(&off, &[0, 1], &off, &[0, 1], 5), PairProof::NotLinear);
    }

    #[test]
    fn vectorised_disjoint_tiles_are_race_free() {
        // Each thread owns an aligned 4-element chunk.
        let off = tid(32) * 4;
        let rel = [0, 1, 2, 3];
        assert_eq!(prove_pair_disjoint(&off, &rel, &off, &rel, 5), PairProof::RaceFree);
    }

    #[test]
    fn nonlinear_offsets_are_not_linear() {
        // t * 3 carries between bits — outside the F₂ fragment.
        let off = tid(32) * 3;
        assert_eq!(prove_pair_disjoint(&off, &[0], &off, &[0], 5), PairProof::NotLinear);
        // Loop-dependent offsets share variables across sides.
        let loopy = tid(32) + IntExpr::var_bounded("k", 8) * 32;
        assert_eq!(prove_pair_disjoint(&loopy, &[0], &loopy, &[0], 5), PairProof::NotLinear);
    }

    #[test]
    fn xor_decompose_rejects_carrying_vectors() {
        assert_eq!(xor_decompose(&[0, 1, 2, 3]), Some(vec![1, 2]));
        assert_eq!(xor_decompose(&[0, 3, 6, 9]), None);
        assert_eq!(xor_decompose(&[0, 1, 2]), None);
    }
}
