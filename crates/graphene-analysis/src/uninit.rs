//! Uninitialised-accumulator detection (`GRA013`).
//!
//! `MatMul` accumulates: `C += A × B`. Its atomic forms (`hfma2`, the
//! Volta and Ampere `mma` instructions) all *read* the accumulator
//! registers before writing them, so a `MatMul` whose output register
//! tile was never written — by an `Init` spec or any prior move — reads
//! garbage. (Per-thread `Reduction` is deliberately *not* checked: the
//! simulator and the hardware lowering fold from the identity element,
//! overwriting the destination, so an uninitialised reduction output is
//! well-defined.)
//!
//! The walk is linear in program order and flow-insensitive about
//! guards: a write under a guard counts as initialising, which errs
//! toward silence — the detector reports only accumulators with *no*
//! preceding write anywhere.

use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorId;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace};
use std::collections::HashSet;

/// Reports `MatMul` specs whose register accumulator is read before any
/// `Init` or other write.
pub fn check_uninit(kernel: &Kernel, _arch: Arch) -> Vec<Diagnostic> {
    let module = &kernel.module;
    let mut initialized: HashSet<TensorId> = HashSet::new();
    let mut reported: HashSet<TensorId> = HashSet::new();
    let mut diags = Vec::new();

    kernel.body.visit(&mut |stmt| {
        let Stmt::Spec(spec) = stmt else { return };
        if !spec.is_undecomposed() {
            // Decomposed specs initialise through their leaves; marking
            // the parent's outputs here would hide leaf-level reads.
            return;
        }
        if matches!(spec.kind, SpecKind::MatMul) {
            for &out in &spec.outs {
                let root = module.root_of(out);
                if module[root].mem == MemSpace::Register
                    && !initialized.contains(&root)
                    && reported.insert(root)
                {
                    diags.push(Diagnostic::error(
                        "GRA013",
                        format!(
                            "accumulator %{} is read by `{}` before any Init or write \
                             (MatMul accumulates into its output)",
                            module[root].name,
                            render_spec_header(module, spec)
                        ),
                    ));
                }
            }
        }
        for &out in &spec.outs {
            initialized.insert(module.root_of(out));
        }
    });
    diags
}
