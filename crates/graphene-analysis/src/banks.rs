//! Shared-memory bank-conflict grading (`GRA014`).
//!
//! Every shared-memory operand of every atomic access site is graded by
//! its conflict factor — actual transactions over the conflict-free
//! minimum — with the strongest method the access admits
//! ([`graphene_sim::grade_conflicts_cached`]):
//!
//! 1. **F₂ rank proof** (`proven-linear`): XOR-affine offsets are
//!    proved for all warps and all loop iterations by one Gaussian
//!    elimination — no address enumeration at all.
//! 2. **Exhaustive enumeration** (`proven-enumerated`): offsets over
//!    `threadIdx.x` and bounded loop counters are graded at every warp
//!    and every loop-value combination — a complete case analysis.
//! 3. **One-warp sampling** (`sampled`): the fallback; a clean grade is
//!    evidence, not proof.
//!
//! Each `GRA014` finding carries its provenance label. A factor of ≥2×
//! warns, anything above 1× is informational. This is the lint that
//! distinguishes Figure 9's swizzled layouts from naive row-major
//! staging.

use graphene_ir::atomic::{match_atomic, registry};
use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::threads::ThreadLevel;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace, Module, TensorId};
use graphene_sim::{grade_conflicts_cached, BankTally, ConflictProvenance, PlanCache};
use std::collections::{HashMap, HashSet};

/// One shared-memory access site with its conflict grade and the
/// provenance of that grade.
#[derive(Debug, Clone)]
pub struct SiteGrade {
    /// Root shared tensor being accessed.
    pub root: TensorId,
    /// The operand view whose offset addresses the root.
    pub view: TensorId,
    /// Root tensor name (for rendering).
    pub tensor: String,
    /// Rendered spec header of the access site.
    pub spec: String,
    /// Conflict-free transaction count.
    pub ideal: u64,
    /// Actual (worst-case, for proofs) transaction count.
    pub actual: u64,
    /// How the grade was established.
    pub provenance: ConflictProvenance,
}

impl SiteGrade {
    /// `true` when the access needs no extra transactions.
    pub fn conflict_free(&self) -> bool {
        self.actual <= self.ideal
    }

    /// Conflict factor (1.0 = conflict-free).
    pub fn factor(&self) -> f64 {
        if self.ideal == 0 {
            1.0
        } else {
            self.actual as f64 / self.ideal as f64
        }
    }
}

/// Grades every shared-memory access site of a kernel.
pub fn grade_sites(kernel: &Kernel, arch: Arch) -> Vec<SiteGrade> {
    grade_sites_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`grade_sites`], reusing an externally owned [`PlanCache`]
/// (keyed by tensor id — share it only between passes over this same
/// kernel).
pub fn grade_sites_cached(kernel: &Kernel, arch: Arch, plans: &mut PlanCache) -> Vec<SiteGrade> {
    let mut cx = BankCx {
        module: &kernel.module,
        reg: registry(arch),
        plans,
        tally: BankTally::new(),
        env: HashMap::from([("blockIdx.x".to_string(), 0)]),
        loops: Vec::new(),
        seen: HashSet::new(),
        sites: Vec::new(),
    };
    cx.walk(&kernel.body.stmts);
    cx.sites
}

/// Grades every shared-memory access site by its bank-conflict factor,
/// reporting conflicted sites as `GRA014` (with the grade's provenance).
pub fn check_bank_conflicts(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    check_bank_conflicts_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`check_bank_conflicts`], reusing an externally owned
/// [`PlanCache`] (keyed by tensor id — share it only between passes
/// over this same kernel).
pub fn check_bank_conflicts_cached(
    kernel: &Kernel,
    arch: Arch,
    plans: &mut PlanCache,
) -> Vec<Diagnostic> {
    grade_sites_cached(kernel, arch, plans)
        .into_iter()
        .filter(|s| s.ideal != 0 && s.actual > s.ideal)
        .map(|s| {
            let factor = s.factor();
            let msg = format!(
                "%{} access in `{}` has a {factor:.1}x bank-conflict \
                 factor ({} transactions, {} conflict-free; {}); \
                 consider a swizzled layout",
                s.tensor,
                s.spec,
                s.actual,
                s.ideal,
                s.provenance.label(),
            );
            if factor >= 2.0 {
                Diagnostic::warn("GRA014", msg)
            } else {
                Diagnostic::info("GRA014", msg)
            }
        })
        .collect()
}

struct BankCx<'m, 'p> {
    module: &'m Module,
    reg: Vec<graphene_ir::AtomicSpec>,
    /// Compiled address plans, shared across every access site.
    plans: &'p mut PlanCache,
    /// Reusable fixed 32-entry conflict tally.
    tally: BankTally,
    env: HashMap<String, i64>,
    /// Enclosing `for` nesting as `(var, extent)` — lets the
    /// enumeration proof cover every iteration, not just iteration 0.
    loops: Vec<(String, i64)>,
    seen: HashSet<(TensorId, String)>,
    sites: Vec<SiteGrade>,
}

impl BankCx<'_, '_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::For { var, extent, body, .. } => {
                    self.env.insert(var.clone(), 0);
                    self.loops.push((var.clone(), *extent));
                    self.walk(body);
                    self.loops.pop();
                    self.env.remove(var);
                }
                Stmt::If { then, .. } => self.walk(then),
                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => self.walk(&body.stmts),
                    None => self.grade_spec(spec),
                },
                _ => {}
            }
        }
    }

    fn grade_spec(&mut self, spec: &graphene_ir::Spec) {
        let module = self.module;
        let Some(&exec) = spec.exec.last() else { return };
        let tt = &module[exec];
        if tt.level != ThreadLevel::Thread || match_atomic(spec, module, &self.reg).is_none() {
            return;
        }
        for &id in spec.ins.iter().chain(spec.outs.iter()) {
            let root = module.root_of(id);
            if module[root].mem != MemSpace::Shared {
                continue;
            }
            let bytes_per = module[id].ty.scalar_type().bytes();
            let Ok(grade) = grade_conflicts_cached(
                self.plans,
                &mut self.tally,
                id,
                module,
                tt,
                &self.env,
                &self.loops,
                bytes_per,
            ) else {
                continue;
            };
            let header = render_spec_header(module, spec);
            if !self.seen.insert((id, header.clone())) {
                continue;
            }
            self.sites.push(SiteGrade {
                root,
                view: id,
                tensor: module[root].name.clone(),
                spec: header,
                ideal: grade.ideal,
                actual: grade.actual,
                provenance: grade.provenance,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::Arch;
    use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
    use graphene_sim::sample_conflicts_cached;

    /// Cross-validation of the F₂ proof against the sampler it replaced:
    /// whatever grade the rank proof assigns a site, enumerating one
    /// representative warp's addresses through the independent
    /// [`BankTally`] path must agree exactly — in particular, a site the
    /// prover declares conflict-free must sample zero extra transactions.
    fn assert_proofs_match_sampling(kernel: &Kernel, arch: Arch) {
        struct Cx<'m, 'p> {
            module: &'m Module,
            reg: Vec<graphene_ir::AtomicSpec>,
            plans: &'p mut PlanCache,
            tally: BankTally,
            env: HashMap<String, i64>,
            loops: Vec<(String, i64)>,
            proven: usize,
        }
        impl Cx<'_, '_> {
            fn walk(&mut self, stmts: &[Stmt]) {
                for s in stmts {
                    match s {
                        Stmt::For { var, extent, body, .. } => {
                            self.env.insert(var.clone(), 0);
                            self.loops.push((var.clone(), *extent));
                            self.walk(body);
                            self.loops.pop();
                            self.env.remove(var);
                        }
                        Stmt::If { then, .. } => self.walk(then),
                        Stmt::Spec(spec) => match &spec.body {
                            Some(body) => self.walk(&body.stmts),
                            None => self.check_spec(spec),
                        },
                        _ => {}
                    }
                }
            }

            fn check_spec(&mut self, spec: &graphene_ir::Spec) {
                let module = self.module;
                let Some(&exec) = spec.exec.last() else { return };
                let tt = &module[exec];
                if tt.level != ThreadLevel::Thread
                    || match_atomic(spec, module, &self.reg).is_none()
                {
                    return;
                }
                for &id in spec.ins.iter().chain(spec.outs.iter()) {
                    let root = module.root_of(id);
                    if module[root].mem != MemSpace::Shared {
                        continue;
                    }
                    let bytes_per = module[id].ty.scalar_type().bytes();
                    let Ok(grade) = grade_conflicts_cached(
                        self.plans,
                        &mut self.tally,
                        id,
                        module,
                        tt,
                        &self.env,
                        &self.loops,
                        bytes_per,
                    ) else {
                        continue;
                    };
                    if grade.provenance != ConflictProvenance::ProvenLinear {
                        continue;
                    }
                    let (ideal, actual) = sample_conflicts_cached(
                        self.plans,
                        &mut self.tally,
                        id,
                        module,
                        tt,
                        &self.env,
                        bytes_per,
                    )
                    .expect("proof-graded site must also sample");
                    assert_eq!(
                        (grade.ideal, grade.actual),
                        (ideal, actual),
                        "F2 proof and sampled tally disagree on %{}",
                        module[root].name
                    );
                    self.proven += 1;
                }
            }
        }
        let mut cx = Cx {
            module: &kernel.module,
            reg: registry(arch),
            plans: &mut PlanCache::new(),
            tally: BankTally::new(),
            env: HashMap::from([("blockIdx.x".to_string(), 0)]),
            loops: Vec::new(),
            proven: 0,
        };
        cx.walk(&kernel.body.stmts);
        assert!(cx.proven > 0, "{}: no site was graded by the F2 proof", kernel.name);
    }

    #[test]
    fn linear_proofs_agree_with_sampled_tallies() {
        // Swizzled staging (conflict-free proofs) and naive row-major
        // staging (conflicted proofs) must both match the sampler.
        let mut cfg = GemmConfig::small(64, 64, 64);
        assert_proofs_match_sampling(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86);
        cfg.swizzle = false;
        assert_proofs_match_sampling(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), Arch::Sm86);
        assert_proofs_match_sampling(&build_gemm(Arch::Sm70, &cfg, Epilogue::None), Arch::Sm70);
    }
}
