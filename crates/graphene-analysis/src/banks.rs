//! Shared-memory bank-conflict grading (`GRA014`).
//!
//! For every shared-memory operand of every atomic access site, one
//! representative warp's addresses are evaluated exactly (via
//! [`graphene_sim::sample_conflicts`], the same sampling the simulator's
//! counter analysis uses) and the measured conflict factor — actual
//! transactions over the conflict-free minimum — grades the finding:
//! a factor of ≥2× warns, anything above 1× is informational. This is
//! the lint that distinguishes Figure 9's swizzled layouts from naive
//! row-major staging.

use graphene_ir::atomic::{match_atomic, registry};
use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::threads::ThreadLevel;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace, Module};
use graphene_sim::sample_conflicts;
use std::collections::{HashMap, HashSet};

/// Grades every shared-memory access site by its measured bank-conflict
/// factor.
pub fn check_bank_conflicts(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    let reg = registry(arch);
    let module = &kernel.module;
    let mut env: HashMap<String, i64> = HashMap::from([("blockIdx.x".to_string(), 0)]);
    let mut seen: HashSet<(graphene_ir::TensorId, String)> = HashSet::new();
    let mut diags = Vec::new();
    walk(&kernel.body.stmts, module, &reg, &mut env, &mut seen, &mut diags);
    diags
}

fn walk(
    stmts: &[Stmt],
    module: &Module,
    reg: &[graphene_ir::AtomicSpec],
    env: &mut HashMap<String, i64>,
    seen: &mut HashSet<(graphene_ir::TensorId, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    for s in stmts {
        match s {
            Stmt::For { var, body, .. } => {
                env.insert(var.clone(), 0);
                walk(body, module, reg, env, seen, diags);
                env.remove(var);
            }
            Stmt::If { then, .. } => walk(then, module, reg, env, seen, diags),
            Stmt::Spec(spec) => match &spec.body {
                Some(body) => walk(&body.stmts, module, reg, env, seen, diags),
                None => {
                    let Some(&exec) = spec.exec.last() else { continue };
                    let tt = &module[exec];
                    if tt.level != ThreadLevel::Thread || match_atomic(spec, module, reg).is_none()
                    {
                        continue;
                    }
                    for &id in spec.ins.iter().chain(spec.outs.iter()) {
                        let root = module.root_of(id);
                        if module[root].mem != MemSpace::Shared {
                            continue;
                        }
                        let bytes_per = module[id].ty.scalar_type().bytes();
                        let Ok((ideal, actual)) = sample_conflicts(id, module, tt, env, bytes_per)
                        else {
                            continue;
                        };
                        if ideal == 0 || actual <= ideal {
                            continue;
                        }
                        let header = render_spec_header(module, spec);
                        if !seen.insert((root, header.clone())) {
                            continue;
                        }
                        let factor = actual as f64 / ideal as f64;
                        let msg = format!(
                            "%{} access in `{header}` has a {factor:.1}x bank-conflict \
                             factor ({actual} transactions, {ideal} conflict-free); \
                             consider a swizzled layout",
                            module[root].name,
                        );
                        diags.push(if factor >= 2.0 {
                            Diagnostic::warn("GRA014", msg)
                        } else {
                            Diagnostic::info("GRA014", msg)
                        });
                    }
                }
            },
            _ => {}
        }
    }
}
