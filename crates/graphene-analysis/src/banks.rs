//! Shared-memory bank-conflict grading (`GRA014`).
//!
//! For every shared-memory operand of every atomic access site, one
//! representative warp's addresses are evaluated exactly (via
//! [`graphene_sim::sample_conflicts_cached`], the same sampling the
//! simulator's counter analysis uses, over compiled address plans and a
//! reusable fixed-size bank tally) and the measured conflict factor —
//! actual transactions over the conflict-free minimum — grades the
//! finding: a factor of ≥2× warns, anything above 1× is informational.
//! This is the lint that distinguishes Figure 9's swizzled layouts from
//! naive row-major staging.

use graphene_ir::atomic::{match_atomic, registry};
use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::threads::ThreadLevel;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace, Module};
use graphene_sim::{sample_conflicts_cached, BankTally, PlanCache};
use std::collections::{HashMap, HashSet};

/// Grades every shared-memory access site by its measured bank-conflict
/// factor.
pub fn check_bank_conflicts(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    check_bank_conflicts_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`check_bank_conflicts`], reusing an externally owned
/// [`PlanCache`] (keyed by tensor id — share it only between passes
/// over this same kernel).
pub fn check_bank_conflicts_cached(
    kernel: &Kernel,
    arch: Arch,
    plans: &mut PlanCache,
) -> Vec<Diagnostic> {
    let mut cx = BankCx {
        module: &kernel.module,
        reg: registry(arch),
        plans,
        tally: BankTally::new(),
        env: HashMap::from([("blockIdx.x".to_string(), 0)]),
        seen: HashSet::new(),
        diags: Vec::new(),
    };
    cx.walk(&kernel.body.stmts);
    cx.diags
}

struct BankCx<'m, 'p> {
    module: &'m Module,
    reg: Vec<graphene_ir::AtomicSpec>,
    /// Compiled address plans, shared across every access site.
    plans: &'p mut PlanCache,
    /// Reusable fixed 32-entry conflict tally.
    tally: BankTally,
    env: HashMap<String, i64>,
    seen: HashSet<(graphene_ir::TensorId, String)>,
    diags: Vec<Diagnostic>,
}

impl BankCx<'_, '_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::For { var, body, .. } => {
                    self.env.insert(var.clone(), 0);
                    self.walk(body);
                    self.env.remove(var);
                }
                Stmt::If { then, .. } => self.walk(then),
                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => self.walk(&body.stmts),
                    None => self.grade_spec(spec),
                },
                _ => {}
            }
        }
    }

    fn grade_spec(&mut self, spec: &graphene_ir::Spec) {
        let module = self.module;
        let Some(&exec) = spec.exec.last() else { return };
        let tt = &module[exec];
        if tt.level != ThreadLevel::Thread || match_atomic(spec, module, &self.reg).is_none() {
            return;
        }
        for &id in spec.ins.iter().chain(spec.outs.iter()) {
            let root = module.root_of(id);
            if module[root].mem != MemSpace::Shared {
                continue;
            }
            let bytes_per = module[id].ty.scalar_type().bytes();
            let Ok((ideal, actual)) = sample_conflicts_cached(
                self.plans,
                &mut self.tally,
                id,
                module,
                tt,
                &self.env,
                bytes_per,
            ) else {
                continue;
            };
            if ideal == 0 || actual <= ideal {
                continue;
            }
            let header = render_spec_header(module, spec);
            if !self.seen.insert((root, header.clone())) {
                continue;
            }
            let factor = actual as f64 / ideal as f64;
            let msg = format!(
                "%{} access in `{header}` has a {factor:.1}x bank-conflict \
                 factor ({actual} transactions, {ideal} conflict-free); \
                 consider a swizzled layout",
                module[root].name,
            );
            self.diags.push(if factor >= 2.0 {
                Diagnostic::warn("GRA014", msg)
            } else {
                Diagnostic::info("GRA014", msg)
            });
        }
    }
}
