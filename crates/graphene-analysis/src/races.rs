//! Shared-memory race detection (`GRA010`) and the redundant-barrier
//! lint (`GRA011`).
//!
//! The detector symbolically executes the decomposition in program
//! order, evaluating the concrete per-thread addresses of every
//! shared-memory access (the same arithmetic [`graphene_sim`] and the
//! hardware perform) and keeping, per shared tensor, the set of accesses
//! not yet ordered by a barrier. A new access conflicts with a pending
//! one when some address is touched by two *different* threads and at
//! least one side writes. Conflicts are reported unless an adequate
//! synchronisation intervened:
//!
//! - a **block-scope** barrier (`__syncthreads()`) orders everything —
//!   including `cp.async` copies, because the CUDA backend drains the
//!   async-copy pipeline (`cp.async.wait_all`) before every block
//!   barrier of a kernel that issues them;
//! - a **warp-scope** barrier (`__syncwarp()`) orders a conflict only
//!   when every conflicting thread pair lies within one warp *and* the
//!   write is not an asynchronous copy (`cp.async` completion is
//!   invisible to `__syncwarp()`).
//!
//! Loops are unrolled twice (iterations 0 and 1) so hazards between an
//! iteration's tail and the next iteration's head — the classic missing
//! top-of-loop barrier in double-buffered pipelines — are observed.
//! Thread-independent guards are evaluated under the loop environment
//! (symbolic guards are assumed taken); thread-dependent guards filter
//! the active lanes per thread.

use crate::linear::{prove_pair_disjoint, PairProof};
use crate::walk::{eval_guard, shared_accesses, thread_dependent, SharedAccess};
use graphene_ir::atomic::{registry, AtomicSpec};
use graphene_ir::body::{Predicate, Stmt, SyncScope};
use graphene_ir::tensor::TensorId;
use graphene_ir::{Arch, Diagnostic, Kernel, MemSpace, Module};
use graphene_sim::PlanCache;
use std::collections::{HashMap, HashSet};

/// How the race check established each access pair's verdict.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RaceSummary {
    /// Pairs proven disjoint (or same-thread-only) by the symbolic F₂
    /// system — valid for every thread and every loop iteration.
    pub pairs_proven_linear: usize,
    /// Pairs decided by per-lane enumeration whose address sets are
    /// exact for all iterations (both offsets and guards depend only on
    /// `threadIdx.x`) — a complete case analysis.
    pub pairs_proven_enumerated: usize,
    /// Pairs decided by enumeration at loop iterations 0 and 1 only.
    pub pairs_sampled: usize,
    /// Conflicting pairs reported as `GRA010` diagnostics.
    pub races_reported: usize,
}

impl RaceSummary {
    /// Total write-involving pairs examined.
    pub fn pairs(&self) -> usize {
        self.pairs_proven_linear
            + self.pairs_proven_enumerated
            + self.pairs_sampled
            + self.races_reported
    }

    /// Every clean pair carries a proof (no sampling fallback).
    pub fn all_proven(&self) -> bool {
        self.pairs_sampled == 0
    }
}

/// Detects shared-memory races in a kernel.
pub fn check_races(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    check_races_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`check_races`], reusing an externally owned [`PlanCache`]
/// (keyed by tensor id — share it only between passes over this same
/// kernel, e.g. with [`crate::banks::check_bank_conflicts_cached`] and
/// `graphene_sim::analyze_cached`).
pub fn check_races_cached(kernel: &Kernel, arch: Arch, plans: &mut PlanCache) -> Vec<Diagnostic> {
    check_races_summary(kernel, arch, plans).0
}

/// Like [`check_races_cached`], also returning the per-pair proof
/// accounting (how many pairs were proven symbolically, proven by
/// exhaustive enumeration, or merely sampled at two loop iterations).
pub fn check_races_summary(
    kernel: &Kernel,
    arch: Arch,
    plans: &mut PlanCache,
) -> (Vec<Diagnostic>, RaceSummary) {
    let mut cx = RaceCx {
        module: &kernel.module,
        reg: registry(arch),
        plans,
        env: HashMap::from([("blockIdx.x".to_string(), 0)]),
        path: vec!["body".into()],
        guards: Vec::new(),
        pending: HashMap::new(),
        reported: HashSet::new(),
        diags: Vec::new(),
        summary: RaceSummary::default(),
    };
    cx.walk(&kernel.body.stmts);
    (cx.diags, cx.summary)
}

struct PendingAccess {
    access: SharedAccess,
    /// A warp-scope barrier was executed after this access.
    warp_synced: bool,
}

struct RaceCx<'m, 'p> {
    module: &'m Module,
    reg: Vec<AtomicSpec>,
    /// Compiled address plans, shared across every access site of the
    /// walk (and with the simulator's representation of addressing).
    plans: &'p mut PlanCache,
    env: HashMap<String, i64>,
    path: Vec<String>,
    guards: Vec<Predicate>,
    pending: HashMap<TensorId, Vec<PendingAccess>>,
    reported: HashSet<(TensorId, String, String)>,
    diags: Vec<Diagnostic>,
    summary: RaceSummary,
}

impl RaceCx<'_, '_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::For { var, extent, body, .. } => {
                    // Two unrolled iterations expose cross-iteration
                    // hazards; more add no new access pairs.
                    for i in 0..(*extent).clamp(0, 2) {
                        self.env.insert(var.clone(), i);
                        self.path.push(format!("for {var} (iteration {i})"));
                        self.walk(body);
                        self.path.pop();
                    }
                    self.env.remove(var);
                }
                Stmt::If { cond, then } => {
                    if thread_dependent(cond) {
                        self.guards.push(cond.clone());
                        self.path.push(format!("if ({} < {})", cond.lhs, cond.rhs));
                        self.walk(then);
                        self.path.pop();
                        self.guards.pop();
                    } else if eval_guard(cond, &self.env).unwrap_or(true) {
                        self.path.push(format!("if ({} < {})", cond.lhs, cond.rhs));
                        self.walk(then);
                        self.path.pop();
                    }
                }
                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => {
                        self.path.push(spec.kind.name());
                        self.walk(&body.stmts);
                        self.path.pop();
                    }
                    None => {
                        for acc in shared_accesses(
                            spec,
                            self.module,
                            &self.reg,
                            self.plans,
                            &mut self.env,
                            &self.guards,
                            &self.path,
                        ) {
                            self.record(acc);
                        }
                    }
                },
                Stmt::Sync(SyncScope::Block) => self.pending.clear(),
                Stmt::Sync(SyncScope::Warp) => {
                    for pend in self.pending.values_mut() {
                        for p in pend.iter_mut() {
                            p.warp_synced = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Symbolic disjointness (the F₂ proof rule): `true` when the pair
    /// is proven race-free for every thread, vector element, and loop
    /// iteration — enumeration can be skipped entirely.
    fn symbolically_disjoint(&mut self, a: &SharedAccess, b: &SharedAccess) -> bool {
        let (Some(na), Some(nb)) = (a.lane_span, b.lane_span) else { return false };
        if na != nb {
            return false;
        }
        let module = self.module;
        let rel_a = self.plans.plan(a.view, module).rel.clone();
        let rel_b = self.plans.plan(b.view, module).rel.clone();
        prove_pair_disjoint(&module[a.view].offset, &rel_a, &module[b.view].offset, &rel_b, na)
            == PairProof::RaceFree
    }

    fn record(&mut self, acc: SharedAccess) {
        let mut pend = self.pending.remove(&acc.root).unwrap_or_default();
        for prev in &pend {
            let p = &prev.access;
            if !(p.write || acc.write) {
                continue; // read-read never conflicts
            }
            if self.symbolically_disjoint(p, &acc) {
                self.summary.pairs_proven_linear += 1;
                continue;
            }
            if let Some(conflict) = first_conflict(p, &acc) {
                let async_write = p.cp_async || acc.cp_async;
                let adequately_warp_synced =
                    prev.warp_synced && !async_write && conflicts_within_one_warp(p, &acc);
                if adequately_warp_synced {
                    continue;
                }
                let key = (acc.root, p.desc.clone(), acc.desc.clone());
                if !self.reported.insert(key) {
                    continue;
                }
                self.summary.races_reported += 1;
                let d = self.race_diag(prev, &acc, conflict);
                self.diags.push(d);
            } else if p.loop_free && acc.loop_free {
                // Both address sets are iteration-independent, so the
                // enumeration just performed was a complete case
                // analysis over every lane.
                self.summary.pairs_proven_enumerated += 1;
            } else {
                self.summary.pairs_sampled += 1;
            }
        }
        pend.push(PendingAccess { access: acc, warp_synced: false });
        let root = pend[0].access.root;
        self.pending.insert(root, pend);
    }

    fn race_diag(
        &self,
        prev: &PendingAccess,
        acc: &SharedAccess,
        c: (i64, i64, i64),
    ) -> Diagnostic {
        let (addr, t1, t2) = c;
        let name = &self.module[acc.root].name;
        let p = &prev.access;
        let rw = |w: bool| if w { "write" } else { "read" };
        let remedy = if p.cp_async || acc.cp_async {
            "cp.async completion requires a wait + block-level barrier between them"
        } else if prev.warp_synced {
            "the intervening __syncwarp() does not order threads of different warps; \
             a block-level __syncthreads() is required"
        } else {
            "insert a block-level __syncthreads() between them"
        };
        Diagnostic::error(
            "GRA010",
            format!(
                "shared-memory race on %{name}: {} by `{}` conflicts with {} by `{}` \
                 at offset {addr} (threads {t1} and {t2}); {remedy}",
                rw(p.write),
                p.desc,
                rw(acc.write),
                acc.desc,
            ),
        )
        .at(acc.path.clone())
    }
}

/// First `(address, prev thread, new thread)` where two different
/// threads touch the same address.
fn first_conflict(a: &SharedAccess, b: &SharedAccess) -> Option<(i64, i64, i64)> {
    let (small, big, swapped) =
        if a.lanes_at.len() <= b.lanes_at.len() { (a, b, false) } else { (b, a, true) };
    let mut best: Option<(i64, i64, i64)> = None;
    for (&addr, lanes) in &small.lanes_at {
        if let Some(other) = big.lanes_at.get(&addr) {
            for &t1 in lanes {
                for &t2 in other {
                    if t1 != t2 && best.is_none_or(|(ba, ..)| addr < ba) {
                        best = Some(if swapped { (addr, t2, t1) } else { (addr, t1, t2) });
                    }
                }
            }
        }
    }
    best
}

/// Every conflicting thread pair lies within one warp (so a warp-scope
/// barrier can order it).
fn conflicts_within_one_warp(a: &SharedAccess, b: &SharedAccess) -> bool {
    for (&addr, lanes) in &a.lanes_at {
        if let Some(other) = b.lanes_at.get(&addr) {
            for &t1 in lanes {
                for &t2 in other {
                    if t1 != t2 && t1 / 32 != t2 / 32 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Flags block barriers with no shared-memory traffic since the
/// previous block barrier *in the same statement list* (`GRA011`).
///
/// The same-list restriction avoids false positives on loop-carried
/// pipelines, where a barrier at the top of an iteration orders against
/// traffic of the *previous* iteration.
pub fn check_redundant_barriers(kernel: &Kernel) -> Vec<Diagnostic> {
    let module = &kernel.module;
    let mut diags = Vec::new();
    walk_lists(&kernel.body.stmts, &mut vec!["body".into()], &mut |stmts, path| {
        let mut since_last: Option<bool> = None; // None until the first barrier
        for (i, s) in stmts.iter().enumerate() {
            match s {
                Stmt::Sync(SyncScope::Block) => {
                    if since_last == Some(false) {
                        diags.push(
                            Diagnostic::warn(
                                "GRA011",
                                format!(
                                    "redundant barrier: no shared-memory access since the \
                                     previous block-level sync (statement {i})"
                                ),
                            )
                            .at(path.to_vec()),
                        );
                    }
                    since_last = Some(false);
                }
                _ => {
                    if touches_shared(s, module) {
                        since_last = since_last.map(|_| true);
                    }
                }
            }
        }
    });
    diags
}

fn walk_lists(stmts: &[Stmt], path: &mut Vec<String>, f: &mut impl FnMut(&[Stmt], &[String])) {
    f(stmts, path);
    for s in stmts {
        match s {
            Stmt::For { var, body, .. } => {
                path.push(format!("for {var}"));
                walk_lists(body, path, f);
                path.pop();
            }
            Stmt::If { cond, then } => {
                path.push(format!("if ({} < {})", cond.lhs, cond.rhs));
                walk_lists(then, path, f);
                path.pop();
            }
            Stmt::Spec(spec) => {
                if let Some(b) = &spec.body {
                    path.push(spec.kind.name());
                    walk_lists(&b.stmts, path, f);
                    path.pop();
                }
            }
            _ => {}
        }
    }
}

/// Does this statement (or anything nested in it) touch shared memory?
fn touches_shared(s: &Stmt, module: &Module) -> bool {
    let spec_touches = |spec: &graphene_ir::Spec| {
        spec.ins
            .iter()
            .chain(spec.outs.iter())
            .any(|&id| module[module.root_of(id)].mem == MemSpace::Shared)
    };
    match s {
        Stmt::Spec(spec) => {
            if spec_touches(spec) {
                return true;
            }
            spec.body.as_ref().is_some_and(|b| b.stmts.iter().any(|st| touches_shared(st, module)))
        }
        Stmt::For { body, .. } | Stmt::If { then: body, .. } => {
            body.iter().any(|st| touches_shared(st, module))
        }
        _ => false,
    }
}
