//! Shared traversal helpers for the analysis passes.

use graphene_ir::atomic::{match_atomic, AtomicSpec};
use graphene_ir::body::Predicate;
use graphene_ir::printer::render_spec_header;
use graphene_ir::spec::Spec;
use graphene_ir::tensor::TensorId;
use graphene_ir::threads::ThreadLevel;
use graphene_ir::{MemSpace, Module};
use graphene_sim::{exec_lanes, lane_addresses_cached, PlanCache};
use std::collections::HashMap;

/// One shared-memory operand access of one undecomposed spec, with the
/// concrete per-thread addresses it touches.
#[derive(Debug, Clone)]
pub struct SharedAccess {
    /// Root shared tensor being accessed.
    pub root: TensorId,
    /// The operand view whose offset expression addresses the root
    /// (input to the symbolic disjointness prover).
    pub view: TensorId,
    /// Rendered spec header (for diagnostics).
    pub desc: String,
    /// Statement path of the spec.
    pub path: Vec<String>,
    /// Write access (the operand is an output).
    pub write: bool,
    /// The access is performed by a `cp.async` asynchronous copy: its
    /// completion is ordered only by a wait + block barrier, never by a
    /// warp-scope sync.
    pub cp_async: bool,
    /// The offset and every active guard depend on nothing but
    /// `threadIdx.x`: enumerating the lanes once covers every loop
    /// iteration, so the per-lane address sets are *exact*, not sampled
    /// at iterations 0 and 1.
    pub loop_free: bool,
    /// `Some(n)` when the executing lanes (after guard filtering) are
    /// exactly `[0, 2^n)` — the precondition for the symbolic
    /// disjointness proof, which models the thread id as `n` free bits.
    pub lane_span: Option<u32>,
    /// `address -> threads touching it` for every scalar address.
    pub lanes_at: HashMap<i64, Vec<i64>>,
}

/// Whether a predicate mentions `threadIdx.x` (so its outcome differs
/// per thread and it *filters* lanes rather than gating the block).
pub fn thread_dependent(cond: &Predicate) -> bool {
    cond.lhs.free_vars().iter().chain(cond.rhs.free_vars().iter()).any(|v| v == "threadIdx.x")
}

/// Evaluates a thread-independent guard under `env`: `Some(taken)` when
/// both sides evaluate, `None` when symbolic (dynamic shape parameters)
/// — callers assume symbolic guards taken, over-approximating.
pub fn eval_guard(cond: &Predicate, env: &HashMap<String, i64>) -> Option<bool> {
    match (cond.lhs.eval(env), cond.rhs.eval(env)) {
        (Ok(l), Ok(r)) => Some(l < r),
        _ => None,
    }
}

/// Collects the shared-memory accesses of one undecomposed spec, with
/// per-thread addresses evaluated under `env` and lanes filtered by the
/// active thread-dependent guards. Address plans are compiled at most
/// once per view through `plans` — the same compiled layer the
/// simulator executes on — and reused across every call site of a pass.
///
/// Returns nothing when the spec matches no atomic spec (reported
/// separately as `GRA002`), has no thread-level execution config, or
/// its addresses cannot be evaluated (unbound dynamic parameters).
pub fn shared_accesses(
    spec: &Spec,
    module: &Module,
    reg: &[AtomicSpec],
    plans: &mut PlanCache,
    env: &mut HashMap<String, i64>,
    guards: &[Predicate],
    path: &[String],
) -> Vec<SharedAccess> {
    let Some(atomic) = match_atomic(spec, module, reg) else { return Vec::new() };
    let Some(&exec) = spec.exec.last() else { return Vec::new() };
    let tt = &module[exec];
    if tt.level != ThreadLevel::Thread {
        return Vec::new();
    }
    let cp_async = atomic.name.starts_with("cp.async");
    let all_lanes = exec_lanes(tt, tt.count() as usize);
    let lanes: Vec<i64> = all_lanes
        .into_iter()
        .filter(|&t| {
            guards.iter().all(|g| {
                env.insert("threadIdx.x".into(), t);
                let taken = eval_guard(g, env).unwrap_or(true);
                env.remove("threadIdx.x");
                taken
            })
        })
        .collect();
    if lanes.is_empty() {
        return Vec::new();
    }
    // Exact lane span [0, 2^n)? (The symbolic prover's tid model.)
    let lane_span = {
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let contiguous = sorted.len() == lanes.len()
            && sorted.len().is_power_of_two()
            && sorted.first() == Some(&0)
            && *sorted.last().expect("non-empty") == sorted.len() as i64 - 1;
        contiguous.then(|| sorted.len().trailing_zeros())
    };
    let tid_only = |e: &graphene_sym::IntExpr| e.free_vars().iter().all(|v| v == "threadIdx.x");
    let guards_tid_only = guards.iter().all(|g| tid_only(&g.lhs) && tid_only(&g.rhs));

    let desc = render_spec_header(module, spec);
    let mut out = Vec::new();
    for (&id, write) in
        spec.ins.iter().map(|i| (i, false)).chain(spec.outs.iter().map(|o| (o, true)))
    {
        let root = module.root_of(id);
        if module[root].mem != MemSpace::Shared {
            continue;
        }
        let Ok(per_lane) = lane_addresses_cached(plans, id, module, &lanes, env) else { continue };
        let mut lanes_at: HashMap<i64, Vec<i64>> = HashMap::new();
        for (t, addrs) in per_lane {
            for a in addrs {
                lanes_at.entry(a).or_default().push(t);
            }
        }
        out.push(SharedAccess {
            root,
            view: id,
            desc: desc.clone(),
            path: path.to_vec(),
            write,
            cp_async: cp_async && write,
            loop_free: guards_tid_only && tid_only(&module[id].offset),
            lane_span,
            lanes_at,
        });
    }
    out
}
