//! Operand memory-space legality (`GRA012`).
//!
//! The atomic specs of Table 2 prescribe a memory space per operand:
//! `ldmatrix` reads shared memory, `mma` operands live in registers,
//! `cp.async` copies global→shared. A spec whose operand shapes, scalar
//! types, and execution config all match an atomic spec — but whose
//! operand *memory spaces* do not — would fail atomic matching with the
//! generic `GRA002`; this pass re-matches with memory requirements
//! relaxed and, when exactly that relaxation makes a match, pinpoints
//! the offending operand and the space the instruction requires.

use graphene_ir::atomic::{match_atomic, registry, AtomicSpec};
use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::{Arch, Diagnostic, Kernel};

/// Reports specs that match an atomic spec only up to operand memory
/// spaces.
pub fn check_memspace(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    let reg = registry(arch);
    let relaxed_reg: Vec<AtomicSpec> = reg
        .iter()
        .map(|a| {
            let mut r = a.clone();
            for p in r.ins.iter_mut().chain(r.outs.iter_mut()) {
                p.any_mem = true;
            }
            r
        })
        .collect();
    let module = &kernel.module;
    let mut diags = Vec::new();

    kernel.body.visit(&mut |stmt| {
        let Stmt::Spec(spec) = stmt else { return };
        if !spec.is_undecomposed() || match_atomic(spec, module, &reg).is_some() {
            return;
        }
        // Find the first atomic spec that matches once memory-space
        // requirements are dropped: the mismatch is purely a space one.
        let Some((atomic, _)) =
            reg.iter().zip(&relaxed_reg).find(|(_, relaxed)| relaxed.matches(spec, module))
        else {
            return; // a deeper mismatch; GRA002 already covers it
        };
        let header = render_spec_header(module, spec);
        for (ids, pats, role) in
            [(&spec.ins, &atomic.ins, "input"), (&spec.outs, &atomic.outs, "output")]
        {
            for (i, (&id, pat)) in ids.iter().zip(pats).enumerate() {
                let d = &module[id];
                if !pat.any_mem && d.mem != pat.mem {
                    diags.push(Diagnostic::error(
                        "GRA012",
                        format!(
                            "illegal memory space: {role} #{i} (%{}) of `{header}` is in \
                             {:?} but `{}` requires {:?}",
                            d.name, d.mem, atomic.name, pat.mem
                        ),
                    ));
                }
            }
        }
    });
    diags
}
