//! # graphene-analysis
//!
//! Static analyses over Graphene IR kernels.
//!
//! Because Graphene IR "precisely describes the implementation" (paper
//! §5.5) — every data tensor carries its layout and memory space, every
//! spec its execution configuration, and address arithmetic is symbolic
//! but evaluable — whole classes of GPU bugs that normally require
//! `compute-sanitizer` runs on hardware are decidable *statically* from
//! the IR. This crate walks kernel decompositions and reports structured
//! [`Diagnostic`]s (stable `GRA0xx` codes, severities, statement paths;
//! see [`graphene_ir::diag`]):
//!
//! - **[`races`] — shared-memory race detection (`GRA010`)**: evaluates
//!   per-thread addresses for every shared-memory access between
//!   synchronisation points (the same arithmetic the simulator and the
//!   hardware perform) and reports write→read / write→write hazards that
//!   lack an adequate intervening barrier, including the `cp.async`
//!   commit/wait discipline of Ampere's asynchronous copies.
//! - **[`races`] — redundant-barrier lint (`GRA011`)**: block barriers
//!   with no shared-memory traffic since the previous barrier.
//! - **[`memspace`] — operand memory-space legality (`GRA012`)**: specs
//!   that would match an atomic spec *except* for an operand's memory
//!   space (e.g. `ldmatrix` from global memory).
//! - **[`uninit`] — uninitialised accumulators (`GRA013`)**: `MatMul`
//!   specs whose accumulator is read before any `Init` or write.
//! - **[`banks`] — bank-conflict grading (`GRA014`)**: conflict factors
//!   per shared-memory access site, warning at ≥2×, each carrying the
//!   provenance of its grade (`proven-linear` / `proven-enumerated` /
//!   `sampled`).
//! - **[`prove`] — out-of-bounds detection (`GRA015`)**: shared/global
//!   accesses proven inside their root allocation by symbolic bounds
//!   propagation, with corner-environment witness enumeration as the
//!   fallback; violations are errors.
//!
//! The symbolic core is the F₂ abstraction: [`linear`] proves
//! race-pair disjointness by solving one XOR-linear system over the
//! bits of the thread ids and vector indices, and [`prove`] aggregates
//! every proof (conflicts, races, bounds) into a [`prove::ProofReport`]
//! and synthesizes conflict-eliminating XOR swizzles
//! ([`prove::synthesize_for_root`]).
//!
//! The structural checks of [`graphene_ir::validate`] (`GRA001`–`GRA005`)
//! run first; [`analyze_kernel`] is the whole pipeline.

#![warn(missing_docs)]

pub mod banks;
pub mod linear;
pub mod memspace;
pub mod prove;
pub mod races;
pub mod uninit;
mod walk;

pub use graphene_ir::diag::{render_json, Diagnostic, Severity};
use graphene_ir::{Arch, Kernel};
use graphene_sim::PlanCache;

/// Runs every analysis pass over a kernel and returns the combined
/// diagnostics, most severe first.
pub fn analyze_kernel(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    analyze_kernel_cached(kernel, arch, &mut PlanCache::new())
}

/// Like [`analyze_kernel`], reusing an externally owned [`PlanCache`]
/// so every address-evaluating pass (races, bank grading) compiles each
/// tensor's address plan once — and so callers that go on to run
/// `graphene_sim::analyze_cached` over the same kernel (the autotuner's
/// prune-then-cost pipeline) reuse those plans again.
///
/// The cache is keyed by tensor id: share it only between passes over
/// this same kernel, never across kernels.
pub fn analyze_kernel_cached(
    kernel: &Kernel,
    arch: Arch,
    plans: &mut PlanCache,
) -> Vec<Diagnostic> {
    let mut diags = graphene_ir::validate::check(kernel, arch);
    diags.extend(races::check_races_cached(kernel, arch, plans));
    diags.extend(races::check_redundant_barriers(kernel));
    diags.extend(memspace::check_memspace(kernel, arch));
    diags.extend(uninit::check_uninit(kernel, arch));
    diags.extend(banks::check_bank_conflicts_cached(kernel, arch, plans));
    diags.extend(prove::check_bounds_cached(kernel, arch, plans));
    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(b.code)));
    diags
}

/// Convenience: the number of [`Severity::Error`] diagnostics in a list.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Error).count()
}
