//! Scalar operation kinds used by pointwise and reduction specs.

use std::fmt;

/// Unary elementwise operations (`UnaryPointwise` specs, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `exp(x)` — used by softmax.
    Exp,
    /// `max(x, 0)` — the ReLU activation.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// The GeLU activation (tanh approximation).
    Gelu,
    /// `-x`.
    Neg,
    /// `1/sqrt(x)` — used by layernorm.
    Rsqrt,
    /// `sqrt(x)`.
    Sqrt,
    /// `1/x`.
    Recip,
    /// Identity (useful for type/space conversion moves).
    Identity,
}

impl UnaryOp {
    /// Applies the operation to an `f64` value (reference semantics for
    /// the simulator).
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Exp => x.exp(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Gelu => {
                0.5 * x * (1.0 + (0.7978845608028654 * (x + 0.044715 * x * x * x)).tanh())
            }
            UnaryOp::Neg => -x,
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Recip => 1.0 / x,
            UnaryOp::Identity => x,
        }
    }

    /// Name used in Graphene listings, e.g. `UnaryPW<relu>`.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Exp => "exp",
            UnaryOp::Relu => "relu",
            UnaryOp::Tanh => "tanh",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Gelu => "gelu",
            UnaryOp::Neg => "neg",
            UnaryOp::Rsqrt => "rsqrt",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Recip => "recip",
            UnaryOp::Identity => "id",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Binary elementwise operations (`BinaryPointwise` specs, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl BinaryOp {
    /// Applies the operation (reference semantics for the simulator).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// Name used in Graphene listings, e.g. `BinaryPW<+>`.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Reduction operations (`Reduction` specs, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum reduction (layernorm means, softmax denominators).
    Sum,
    /// Max reduction (softmax numeric stabilisation).
    Max,
}

impl ReduceOp {
    /// The identity element of the reduction.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Combines two values.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
        }
    }

    /// Name used in Graphene listings.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Relu.apply(-3.0), 0.0);
        assert_eq!(UnaryOp::Relu.apply(2.5), 2.5);
        assert!((UnaryOp::Exp.apply(0.0) - 1.0).abs() < 1e-12);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(UnaryOp::Neg.apply(4.0), -4.0);
        assert!((UnaryOp::Rsqrt.apply(4.0) - 0.5).abs() < 1e-12);
        assert!((UnaryOp::Gelu.apply(0.0)).abs() < 1e-12);
        assert!(UnaryOp::Gelu.apply(3.0) > 2.9);
    }

    #[test]
    fn binary_semantics() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::Div.apply(6.0, 3.0), 2.0);
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
        assert!(ReduceOp::Max.identity().is_infinite());
    }

    #[test]
    fn display_names() {
        assert_eq!(UnaryOp::Relu.to_string(), "relu");
        assert_eq!(BinaryOp::Add.to_string(), "+");
        assert_eq!(ReduceOp::Sum.to_string(), "sum");
    }
}
