//! Kernel validation: shape, memory, and lowerability checks.
//!
//! Graphene IR "precisely describes the implementation" (§5.5), so most
//! errors can be caught before code generation: undecomposed specs that
//! match no atomic spec of the target architecture, execution
//! configurations exceeding the launch dimensions, pointwise specs with
//! mismatched element counts, and shared-memory overflows.
//!
//! Diagnostics use the structured model of [`crate::diag`] (stable
//! `GRA0xx` codes, severities, statement paths). The deeper data-flow
//! passes — shared-memory race detection, barrier hygiene, memory-space
//! legality, accumulator initialisation, bank-conflict grading — live in
//! the `graphene-analysis` crate, which starts from [`check`].

use crate::atomic::{match_atomic, registry, Arch};
use crate::body::Stmt;
use crate::module::Kernel;
use crate::printer::render_spec_header;
use crate::spec::SpecKind;

pub use crate::diag::{Diagnostic, Severity};

/// Runs the structural validation checks, returning every diagnostic
/// found (the list is empty for a lowerable kernel).
pub fn check(kernel: &Kernel, arch: Arch) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reg = registry(arch);
    let module = &kernel.module;
    let block_threads = kernel.block_size();

    kernel.body.visit(&mut |stmt| {
        if let Stmt::Spec(spec) = stmt {
            // Execution configs must fit in the launch.
            for &t in &spec.exec {
                let tt = &module[t];
                if tt.level == crate::threads::ThreadLevel::Thread && tt.count() > block_threads {
                    diags.push(Diagnostic::error(
                        "GRA001",
                        format!(
                            "spec `{}` requires {} threads but the block has {}",
                            render_spec_header(module, spec),
                            tt.count(),
                            block_threads
                        ),
                    ));
                }
            }
            // Undecomposed specs must be atomic.
            if spec.is_undecomposed() && match_atomic(spec, module, &reg).is_none() {
                diags.push(Diagnostic::error(
                    "GRA002",
                    format!(
                        "undecomposed spec `{}` matches no {} atomic spec",
                        render_spec_header(module, spec),
                        arch
                    ),
                ));
            }
            // Pointwise element-count agreement.
            if let SpecKind::BinaryPointwise(_) = spec.kind {
                if let (Some(&a), Some(&b)) = (spec.ins.first(), spec.ins.get(1)) {
                    let (na, nb) = (module[a].ty.num_scalars(), module[b].ty.num_scalars());
                    if na != nb {
                        diags.push(Diagnostic::error(
                            "GRA003",
                            format!("binary pointwise operands disagree: {na} vs {nb} scalars"),
                        ));
                    }
                }
            }
            // Moves preserve total element counts (per executing group).
            // An empty exec executes once (host-like single lane), so the
            // group size is 1 and the check still applies.
            if matches!(spec.kind, SpecKind::Move) && spec.body.is_none() {
                if let (Some(&src), Some(&dst)) = (spec.ins.first(), spec.outs.first()) {
                    let (ns, nd) = (module[src].ty.num_scalars(), module[dst].ty.num_scalars());
                    // Collective moves redistribute across the group and
                    // may over-address (ldmatrix.x2 uses only half the
                    // warp's addresses): totals must divide evenly.
                    let group = spec.exec.last().map(|&t| module[t].group_size()).unwrap_or(1);
                    let (ts, td) = (ns * group, nd * group);
                    let balanced =
                        ts == td || (ts > td && ts % td == 0) || (td > ts && td % ts == 0);
                    if !balanced {
                        diags.push(Diagnostic::error(
                            "GRA004",
                            format!(
                                "move element counts irreconcilable: src {ns}, dst {nd}, group {group}"
                            ),
                        ));
                    }
                }
            }
        }
    });

    // Shared memory budget (per-architecture opt-in limit).
    let smem = kernel.shared_bytes();
    let limit = arch.smem_limit_bytes();
    if smem > limit {
        diags.push(Diagnostic::error(
            "GRA005",
            format!("kernel allocates {smem} B of shared memory ({arch} limit {limit} B)"),
        ));
    }

    diags
}

/// Validates a kernel against an architecture.
///
/// Thin compatibility wrapper over [`check`].
///
/// # Errors
///
/// Returns all diagnostics found (empty `Ok(())` means the kernel is
/// lowerable).
pub fn validate(kernel: &Kernel, arch: Arch) -> Result<(), Vec<Diagnostic>> {
    let diags = check(kernel, arch);
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::dtype::ScalarType;
    use crate::tensor::TensorType;
    use graphene_layout::Layout;

    #[test]
    fn valid_scalar_move_passes() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let g = kb.param("g", &[32], ScalarType::F32);
        let block = kb.block();
        let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        let tid = kb.module()[block].group_coords()[0].clone();
        let g_elem = kb.index(g, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![g_elem], vec![r]);
        let kernel = kb.build();
        assert!(validate(&kernel, Arch::Sm86).is_ok());
        assert!(validate(&kernel, Arch::Sm70).is_ok());
    }

    #[test]
    fn unmatchable_spec_reported() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        // A global->global move matches no instruction.
        let g1 = kb.param("g1", &[32], ScalarType::F32);
        let g2 = kb.param("g2", &[32], ScalarType::F32);
        let block = kb.block();
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![g1], vec![g2]);
        let kernel = kb.build();
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.code == "GRA002" && d.severity == Severity::Error));
    }

    #[test]
    fn oversized_exec_reported() {
        // A spec executed by a 64-thread tensor inside a 32-thread block.
        let mut module = crate::module::Module::new();
        let grid = module.declare_threads(crate::threads::ThreadTensor::new(
            "grid",
            crate::threads::ThreadLevel::Block,
            &[1],
        ));
        let block = module.declare_threads(crate::threads::ThreadTensor::new(
            "threads",
            crate::threads::ThreadLevel::Thread,
            &[32],
        ));
        let big = module.declare_threads(crate::threads::ThreadTensor::new(
            "big",
            crate::threads::ThreadLevel::Thread,
            &[64],
        ));
        let g = module.declare_tensor(
            "g",
            TensorType::row_major(&[64], ScalarType::F32),
            crate::memory::MemSpace::Global,
        );
        let r = module.declare_tensor(
            "r",
            TensorType::scalar(Layout::contiguous(1), ScalarType::F32),
            crate::memory::MemSpace::Register,
        );
        let spec = crate::spec::Spec::atomic(SpecKind::Move, vec![big], vec![g], vec![r]);
        let kernel = crate::module::Kernel {
            name: "k".into(),
            module,
            params: vec![g],
            grid,
            block,
            body: crate::body::Body::from_stmts(vec![Stmt::Spec(spec)]),
        };
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        let d = err.iter().find(|d| d.code == "GRA001").expect("GRA001 reported");
        assert!(d.message.contains("requires 64 threads"));
    }

    #[test]
    fn smem_overflow_reported() {
        let mut kb = KernelBuilder::new("k", &[1], &[128]);
        kb.alloc_shared(
            "huge",
            TensorType::row_major(&[1024, 128], ScalarType::F32), // 512 KiB
        );
        let kernel = kb.build();
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.code == "GRA005"));
    }

    #[test]
    fn smem_limit_is_per_arch() {
        // 98 KiB: over Volta's 96 KiB, under Ampere's 100 KiB.
        let mut kb = KernelBuilder::new("k", &[1], &[128]);
        kb.alloc_shared("mid", TensorType::row_major(&[98 * 1024 / 4], ScalarType::F32));
        let kernel = kb.build();
        assert!(validate(&kernel, Arch::Sm86).is_ok());
        let err = validate(&kernel, Arch::Sm70).unwrap_err();
        assert!(err.iter().any(|d| d.code == "GRA005" && d.message.contains("Volta")));
    }

    #[test]
    fn empty_exec_move_is_still_checked() {
        // A Move with no execution config: the element-count balance
        // check must not be skipped (group defaults to 1).
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let g = kb.param("g", &[3], ScalarType::F32);
        let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(2), ScalarType::F32));
        kb.spec(SpecKind::Move, vec![], vec![g], vec![r]);
        let kernel = kb.build();
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.code == "GRA004"), "{err:?}");
    }
}
