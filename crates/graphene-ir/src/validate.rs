//! Kernel validation: shape, memory, and lowerability checks.
//!
//! Graphene IR "precisely describes the implementation" (§5.5), so most
//! errors can be caught before code generation: undecomposed specs that
//! match no atomic spec of the target architecture, execution
//! configurations exceeding the launch dimensions, pointwise specs with
//! mismatched element counts, and shared-memory overflows.

use crate::atomic::{match_atomic, registry, Arch};
use crate::body::Stmt;
use crate::module::Kernel;
use crate::printer::render_spec_header;
use crate::spec::SpecKind;
use std::fmt;

/// A validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Validates a kernel against an architecture.
///
/// # Errors
///
/// Returns all diagnostics found (empty `Ok(())` means the kernel is
/// lowerable).
pub fn validate(kernel: &Kernel, arch: Arch) -> Result<(), Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let reg = registry(arch);
    let module = &kernel.module;
    let block_threads = kernel.block_size();

    kernel.body.visit(&mut |stmt| {
        if let Stmt::Spec(spec) = stmt {
            // Execution configs must fit in the launch.
            for &t in &spec.exec {
                let tt = &module[t];
                if tt.level == crate::threads::ThreadLevel::Thread && tt.count() > block_threads {
                    diags.push(Diagnostic {
                        message: format!(
                            "spec `{}` requires {} threads but the block has {}",
                            render_spec_header(module, spec),
                            tt.count(),
                            block_threads
                        ),
                    });
                }
            }
            // Undecomposed specs must be atomic.
            if spec.is_undecomposed() && match_atomic(spec, module, &reg).is_none() {
                diags.push(Diagnostic {
                    message: format!(
                        "undecomposed spec `{}` matches no {} atomic spec",
                        render_spec_header(module, spec),
                        arch
                    ),
                });
            }
            // Pointwise element-count agreement.
            if let SpecKind::BinaryPointwise(_) = spec.kind {
                if let (Some(&a), Some(&b)) = (spec.ins.first(), spec.ins.get(1)) {
                    let (na, nb) = (module[a].ty.num_scalars(), module[b].ty.num_scalars());
                    if na != nb {
                        diags.push(Diagnostic {
                            message: format!(
                                "binary pointwise operands disagree: {na} vs {nb} scalars"
                            ),
                        });
                    }
                }
            }
            // Moves preserve total element counts (per executing group).
            if matches!(spec.kind, SpecKind::Move) && spec.body.is_none() {
                if let (Some(&src), Some(&dst)) = (spec.ins.first(), spec.outs.first()) {
                    let (ns, nd) = (module[src].ty.num_scalars(), module[dst].ty.num_scalars());
                    // Collective moves redistribute across the group; the
                    // per-thread counts may differ by the group size.
                    let group = spec
                        .exec
                        .last()
                        .map(|&t| module[t].group_size())
                        .unwrap_or(1);
                    // Collective moves redistribute across the group and
                    // may over-address (ldmatrix.x2 uses only half the
                    // warp's addresses): totals must divide evenly.
                    let (ts, td) = (ns * group, nd * group);
                    let balanced = ts == td || (ts > td && ts % td == 0) || (td > ts && td % ts == 0);
                    if !balanced {
                        diags.push(Diagnostic {
                            message: format!(
                                "move element counts irreconcilable: src {ns}, dst {nd}, group {group}"
                            ),
                        });
                    }
                }
            }
        }
    });

    // Shared memory budget (both target architectures allow ≥ 96 KiB).
    let smem = kernel.shared_bytes();
    let limit = 96 * 1024;
    if smem > limit {
        diags.push(Diagnostic {
            message: format!("kernel allocates {smem} B of shared memory (limit {limit} B)"),
        });
    }

    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::dtype::ScalarType;
    use crate::tensor::TensorType;
    use graphene_layout::Layout;

    #[test]
    fn valid_scalar_move_passes() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let g = kb.param("g", &[32], ScalarType::F32);
        let block = kb.block();
        let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        let tid = kb.module()[block].group_coords()[0].clone();
        let g_elem = kb.index(g, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![g_elem], vec![r]);
        let kernel = kb.build();
        assert!(validate(&kernel, Arch::Sm86).is_ok());
        assert!(validate(&kernel, Arch::Sm70).is_ok());
    }

    #[test]
    fn unmatchable_spec_reported() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        // A global->global move matches no instruction.
        let g1 = kb.param("g1", &[32], ScalarType::F32);
        let g2 = kb.param("g2", &[32], ScalarType::F32);
        let block = kb.block();
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![g1], vec![g2]);
        let kernel = kb.build();
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.message.contains("matches no Ampere atomic spec")));
    }

    #[test]
    fn oversized_exec_reported() {
        // A spec executed by a 64-thread tensor inside a 32-thread block.
        let mut module = crate::module::Module::new();
        let grid = module.declare_threads(crate::threads::ThreadTensor::new(
            "grid",
            crate::threads::ThreadLevel::Block,
            &[1],
        ));
        let block = module.declare_threads(crate::threads::ThreadTensor::new(
            "threads",
            crate::threads::ThreadLevel::Thread,
            &[32],
        ));
        let big = module.declare_threads(crate::threads::ThreadTensor::new(
            "big",
            crate::threads::ThreadLevel::Thread,
            &[64],
        ));
        let g = module.declare_tensor(
            "g",
            TensorType::row_major(&[64], ScalarType::F32),
            crate::memory::MemSpace::Global,
        );
        let r = module.declare_tensor(
            "r",
            TensorType::scalar(Layout::contiguous(1), ScalarType::F32),
            crate::memory::MemSpace::Register,
        );
        let spec = crate::spec::Spec::atomic(SpecKind::Move, vec![big], vec![g], vec![r]);
        let kernel = crate::module::Kernel {
            name: "k".into(),
            module,
            params: vec![g],
            grid,
            block,
            body: crate::body::Body::from_stmts(vec![Stmt::Spec(spec)]),
        };
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.message.contains("requires 64 threads")));
    }

    #[test]
    fn smem_overflow_reported() {
        let mut kb = KernelBuilder::new("k", &[1], &[128]);
        kb.alloc_shared(
            "huge",
            TensorType::row_major(&[1024, 128], ScalarType::F32), // 512 KiB
        );
        let kernel = kb.build();
        let err = validate(&kernel, Arch::Sm86).unwrap_err();
        assert!(err.iter().any(|d| d.message.contains("shared memory")));
    }
}
