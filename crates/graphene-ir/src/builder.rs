//! An ergonomic Rust API for constructing Graphene IR.
//!
//! The paper generates Graphene IR "using a simple Python API" (§5.4,
//! Figure 8 top). [`KernelBuilder`] is the Rust equivalent: it manages the
//! declaration arena, generates fresh value names (`%6`, `%7`, ... as in
//! the paper's listings), and provides scoped closures for loops,
//! predicated blocks, and decomposed specs.
//!
//! ```
//! use graphene_ir::builder::KernelBuilder;
//! use graphene_ir::dtype::ScalarType;
//! use graphene_ir::spec::SpecKind;
//!
//! // The naive GEMM of the paper's Figure 8:
//! let mut kb = KernelBuilder::new("graphene_kernel", &[8, 8], &[16, 16]);
//! let a = kb.param("1", &[1024, 1024], ScalarType::F16);
//! let b = kb.param("2", &[1024, 1024], ScalarType::F16);
//! let c = kb.param("3", &[1024, 1024], ScalarType::F16);
//! let kernel = kb.build();
//! assert_eq!(kernel.grid_size(), 64);
//! assert_eq!(kernel.block_size(), 256);
//! # let _ = (a, b, c);
//! ```

use crate::body::{Body, Predicate, Stmt, SyncScope};
use crate::dtype::ScalarType;
use crate::memory::MemSpace;
use crate::module::{Kernel, Module};
use crate::spec::{Spec, SpecKind};
use crate::tensor::{TensorId, TensorType};
use crate::threads::{ThreadId, ThreadLevel, ThreadTensor};
use graphene_layout::{Layout, LayoutError};
use graphene_sym::IntExpr;

/// Builder for one Graphene kernel.
#[derive(Debug)]
pub struct KernelBuilder {
    module: Module,
    name: String,
    params: Vec<TensorId>,
    grid: ThreadId,
    block: ThreadId,
    scopes: Vec<Vec<Stmt>>,
    counter: u32,
}

impl KernelBuilder {
    /// Starts a kernel with the given grid (`block`-level) and block
    /// (`thread`-level) dimensions.
    pub fn new(name: impl Into<String>, grid_dims: &[i64], block_dims: &[i64]) -> Self {
        let mut module = Module::new();
        let grid = module.declare_threads(ThreadTensor::new("grid", ThreadLevel::Block, grid_dims));
        let block =
            module.declare_threads(ThreadTensor::new("threads", ThreadLevel::Thread, block_dims));
        KernelBuilder {
            module,
            name: name.into(),
            params: Vec::new(),
            grid,
            block,
            scopes: vec![Vec::new()],
            counter: 0,
        }
    }

    /// The kernel's name.
    pub fn kernel_name(&self) -> &str {
        &self.name
    }

    /// The grid thread tensor (`block` level).
    pub fn grid(&self) -> ThreadId {
        self.grid
    }

    /// The block thread tensor (`thread` level).
    pub fn block(&self) -> ThreadId {
        self.block
    }

    /// Read access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("{}", self.counter)
    }

    fn emit(&mut self, stmt: Stmt) {
        self.scopes.last_mut().expect("builder scope stack is never empty").push(stmt);
    }

    // --- declarations -----------------------------------------------------

    /// Declares a row-major global-memory kernel parameter.
    pub fn param(&mut self, name: impl Into<String>, dims: &[i64], st: ScalarType) -> TensorId {
        self.param_with_type(name, TensorType::row_major(dims, st))
    }

    /// Declares a kernel parameter with an explicit type (layout).
    pub fn param_with_type(&mut self, name: impl Into<String>, ty: TensorType) -> TensorId {
        let id = self.module.declare_tensor(name, ty, MemSpace::Global);
        self.params.push(id);
        id
    }

    /// Allocates a shared-memory tensor (`Allocate` spec, Table 1) and
    /// emits the allocation statement.
    pub fn alloc_shared(&mut self, name: impl Into<String>, ty: TensorType) -> TensorId {
        let id = self.module.declare_tensor(name, ty, MemSpace::Shared);
        self.emit(Stmt::Alloc { tensor: id });
        id
    }

    /// Allocates a per-thread register tensor.
    pub fn alloc_reg(&mut self, name: impl Into<String>, ty: TensorType) -> TensorId {
        let id = self.module.declare_tensor(name, ty, MemSpace::Register);
        self.emit(Stmt::Alloc { tensor: id });
        id
    }

    // --- tensor views -----------------------------------------------------

    /// `%r = %src.tile(tilers)` with full tiler layouts (`None` = `_`).
    ///
    /// # Errors
    ///
    /// Propagates layout-algebra errors (indivisible tiles etc.).
    pub fn tile(
        &mut self,
        src: TensorId,
        tilers: &[Option<Layout>],
    ) -> Result<TensorId, LayoutError> {
        let ty = self.module[src].ty.tile(tilers)?;
        let name = self.fresh();
        let id = self.module.declare_view(name, ty, src, IntExpr::zero());
        self.emit(Stmt::Tile { result: id, src, tilers: tilers.to_vec() });
        Ok(id)
    }

    /// `%r = %src.tile([a, b, ...])` with contiguous tile sizes; `None`
    /// keeps the whole dimension (`_`).
    ///
    /// # Errors
    ///
    /// Propagates layout-algebra errors.
    pub fn tile_c(
        &mut self,
        src: TensorId,
        sizes: &[Option<i64>],
    ) -> Result<TensorId, LayoutError> {
        let tilers: Vec<Option<Layout>> = sizes.iter().map(|s| s.map(Layout::contiguous)).collect();
        self.tile(src, &tilers)
    }

    /// `%r = %src[coords...]` — selects a tile (if `src` is tiled) or a
    /// scalar element (if not).
    pub fn index(&mut self, src: TensorId, coords: &[IntExpr]) -> TensorId {
        let src_decl = &self.module[src];
        let offset = src_decl.ty.offset_of(coords);
        let result_ty = match src_decl.ty.tile_elem() {
            Some(tile) => tile.clone(),
            None => TensorType::scalar(Layout::contiguous(1), src_decl.ty.scalar_type())
                .with_swizzle(src_decl.ty.swizzle),
        };
        let name = self.fresh();
        let id = self.module.declare_view(name, result_ty, src, offset);
        self.emit(Stmt::Index { result: id, src, coords: coords.to_vec() });
        id
    }

    /// Declares a *reinterpreting* view of `src`: same storage, explicit
    /// type and extra scalar offset. Used when the same registers are
    /// addressed through different fragment shapes (e.g. an `ldmatrix`
    /// destination later read as an `mma` operand) — the register-level
    /// equivalent of the paper's layout-agnostic logical coordinates
    /// (§3.2).
    pub fn view_as(&mut self, src: TensorId, ty: TensorType, offset: IntExpr) -> TensorId {
        let name = self.fresh();
        self.module.declare_view(name, ty, src, offset)
    }

    // --- thread views -----------------------------------------------------

    /// `#r = #src.tile([tiler])` — logical thread groups (paper §4).
    ///
    /// # Errors
    ///
    /// Propagates layout-algebra errors.
    pub fn thread_tile(&mut self, src: ThreadId, tiler: &Layout) -> Result<ThreadId, LayoutError> {
        let name = format!("t{}", self.fresh());
        let tt = self.module[src].tile(name, tiler)?;
        let id = self.module.declare_threads(tt);
        self.emit(Stmt::ThreadTile { result: id, src, tiler: tiler.clone() });
        Ok(id)
    }

    /// `#r = #src.reshape(0, dims)` — rearrange logical groups.
    ///
    /// # Errors
    ///
    /// Propagates layout-algebra errors.
    pub fn thread_reshape(&mut self, src: ThreadId, dims: &[i64]) -> Result<ThreadId, LayoutError> {
        let name = format!("t{}", self.fresh());
        let tt = self.module[src].reshape_groups(name, dims)?;
        let id = self.module.declare_threads(tt);
        self.emit(Stmt::ThreadReshape { result: id, src, dims: dims.to_vec() });
        Ok(id)
    }

    /// `#r = #src.scalar()` — per-thread singleton execution config.
    pub fn thread_scalar(&mut self, src: ThreadId) -> ThreadId {
        let name = format!("t{}", self.fresh());
        let tt = self.module[src].scalar(name);
        self.module.declare_threads(tt)
    }

    // --- control flow -----------------------------------------------------

    /// Emits `for (var = 0; var < extent; ++var)` and runs `f` with the
    /// loop variable inside the loop's scope.
    pub fn for_loop(
        &mut self,
        var: &str,
        extent: i64,
        unroll: bool,
        f: impl FnOnce(&mut Self, IntExpr),
    ) {
        let v = IntExpr::var_bounded(var, extent);
        self.scopes.push(Vec::new());
        f(self, v);
        let body = self.scopes.pop().expect("loop scope");
        self.emit(Stmt::For { var: var.to_string(), extent, unroll, body });
    }

    /// Emits a predicated block `if (lhs < rhs) { ... }` (partial tiles,
    /// paper §3.4).
    pub fn if_lt(&mut self, lhs: IntExpr, rhs: IntExpr, f: impl FnOnce(&mut Self)) {
        self.scopes.push(Vec::new());
        f(self);
        let then = self.scopes.pop().expect("if scope");
        self.emit(Stmt::If { cond: Predicate { lhs, rhs }, then });
    }

    // --- specs ------------------------------------------------------------

    /// Emits an undecomposed spec (to be matched against atomic specs).
    pub fn spec(
        &mut self,
        kind: SpecKind,
        exec: Vec<ThreadId>,
        ins: Vec<TensorId>,
        outs: Vec<TensorId>,
    ) {
        self.emit(Stmt::Spec(Spec::atomic(kind, exec, ins, outs)));
    }

    /// Emits a spec whose decomposition is built by `f`.
    pub fn spec_decomposed(
        &mut self,
        kind: SpecKind,
        exec: Vec<ThreadId>,
        ins: Vec<TensorId>,
        outs: Vec<TensorId>,
        f: impl FnOnce(&mut Self),
    ) {
        self.scopes.push(Vec::new());
        f(self);
        let stmts = self.scopes.pop().expect("spec scope");
        self.emit(Stmt::Spec(Spec::decomposed(kind, exec, ins, outs, Body::from_stmts(stmts))));
    }

    /// Emits `__syncthreads()`.
    pub fn sync(&mut self) {
        self.emit(Stmt::Sync(SyncScope::Block));
    }

    /// Emits a comment.
    pub fn comment(&mut self, text: impl Into<String>) {
        self.emit(Stmt::Comment(text.into()));
    }

    /// Finalises the kernel.
    ///
    /// # Panics
    ///
    /// Panics if called with unbalanced scopes (an open loop or spec).
    pub fn build(mut self) -> Kernel {
        assert_eq!(self.scopes.len(), 1, "unbalanced builder scopes");
        let stmts = self.scopes.pop().unwrap();
        Kernel {
            name: self.name,
            module: self.module,
            params: self.params,
            grid: self.grid,
            block: self.block,
            body: Body::from_stmts(stmts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinaryOp;

    #[test]
    fn figure8_structure() {
        // Reconstruct the shape of the paper's Figure 8 kernel.
        let mut kb = KernelBuilder::new("graphene_kernel", &[8, 8], &[16, 16]);
        let a = kb.param("1", &[1024, 1024], ScalarType::F16);
        let b = kb.param("2", &[1024, 1024], ScalarType::F16);
        let c = kb.param("3", &[1024, 1024], ScalarType::F16);

        let grid = kb.grid();
        let block = kb.block();
        let bids = kb.module()[grid].group_coords();
        let tids = kb.module()[block].group_coords();

        kb.for_loop("k", 1024, true, |kb, k| {
            kb.for_loop("m", 8, true, |kb, m| {
                kb.for_loop("n", 8, true, |kb, n| {
                    let a_blk = kb.tile_c(a, &[Some(128), None]).unwrap();
                    let b_blk = kb.tile_c(b, &[None, Some(128)]).unwrap();
                    let c_blk = kb.tile_c(c, &[Some(128), Some(128)]).unwrap();
                    let a_v = kb.index(a_blk, &[bids[0].clone(), IntExpr::zero()]);
                    let b_v = kb.index(b_blk, &[IntExpr::zero(), bids[1].clone()]);
                    let c_v = kb.index(c_blk, &[bids[0].clone(), bids[1].clone()]);

                    let a_t = kb.tile_c(a_v, &[Some(8), None]).unwrap();
                    let b_t = kb.tile_c(b_v, &[None, Some(8)]).unwrap();
                    let c_t = kb.tile_c(c_v, &[Some(8), Some(8)]).unwrap();
                    let a_tv = kb.index(a_t, &[tids[0].clone(), IntExpr::zero()]);
                    let b_tv = kb.index(b_t, &[IntExpr::zero(), tids[1].clone()]);
                    let c_tv = kb.index(c_t, &[tids[0].clone(), tids[1].clone()]);

                    let a_s = kb.index(a_tv, &[m.clone(), k.clone()]);
                    let b_s = kb.index(b_tv, &[k.clone(), n.clone()]);
                    let c_s = kb.index(c_tv, &[m.clone(), n.clone()]);

                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::MatMul, vec![ts], vec![a_s, b_s], vec![c_s]);
                });
            });
        });

        let kernel = kb.build();
        assert_eq!(kernel.grid_size(), 64);
        assert_eq!(kernel.block_size(), 256);
        // Triple loop nest with one innermost MatMul spec.
        assert_eq!(kernel.body.count_stmts(|s| matches!(s, Stmt::For { .. })), 3);
        assert_eq!(kernel.body.count_stmts(|s| matches!(s, Stmt::Spec(_))), 1);
        // The scalar C element's offset matches Figure 8's generated
        // index: bid_m*131072 + bid_n*128 + tid_m*8192 + tid_n*8 + m*1024 + n.
        let c_scalar =
            kernel.module.tensors().map(|(_, d)| d).filter(|d| d.base.is_some()).last().unwrap();
        let env: std::collections::HashMap<String, i64> = [
            ("blockIdx.x".to_string(), 9),   // bid_m=1, bid_n=1
            ("threadIdx.x".to_string(), 17), // tid_m=1, tid_n=1
            ("m".to_string(), 2),
            ("n".to_string(), 3),
            ("k".to_string(), 5),
        ]
        .into();
        let got = c_scalar.offset.eval(&env).unwrap();
        let want = 131072 + 128 + 8192 + 8 + 2 * 1024 + 3;
        assert_eq!(got, want);
    }

    #[test]
    fn scoped_statements_nest() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        kb.for_loop("i", 4, false, |kb, i| {
            kb.if_lt(i, IntExpr::constant(3), |kb| {
                kb.comment("guarded");
                let _ = kb.thread_scalar(block);
            });
        });
        let kernel = kb.build();
        assert_eq!(kernel.body.stmts.len(), 1);
        assert_eq!(kernel.body.count_stmts(|s| matches!(s, Stmt::If { .. })), 1);
        assert_eq!(kernel.body.count_stmts(|s| matches!(s, Stmt::Comment(_))), 1);
    }

    #[test]
    fn decomposed_spec_captures_body() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        let x = kb.param("x", &[32], ScalarType::F32);
        let y = kb.param("y", &[32], ScalarType::F32);
        kb.spec_decomposed(
            SpecKind::BinaryPointwise(BinaryOp::Add),
            vec![block],
            vec![x, y],
            vec![y],
            |kb| kb.comment("impl"),
        );
        let kernel = kb.build();
        let mut found = false;
        kernel.body.visit(&mut |s| {
            if let Stmt::Spec(spec) = s {
                assert!(spec.body.is_some());
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn alloc_tracks_memory() {
        let mut kb = KernelBuilder::new("k", &[1], &[128]);
        kb.alloc_shared("smem", TensorType::row_major(&[128, 32], ScalarType::F16));
        kb.alloc_reg("acc", TensorType::row_major(&[2, 4], ScalarType::F32));
        let kernel = kb.build();
        assert_eq!(kernel.shared_bytes(), 128 * 32 * 2);
        assert_eq!(kernel.registers_per_thread(), 8);
    }
}
