//! Data tensors: types, tiles, and views.
//!
//! A Graphene data tensor (paper §3.1, Figure 2) is
//! `Name : Shape . ElementType . Memory`. The element type is recursive:
//! a nested shape represents a *tile* (§3.3), so a hierarchically tiled
//! tensor is `outer-shape . inner-shape . scalar . memory` where the outer
//! shape arranges the tiles and the inner shape the elements within a
//! tile. Strides at every level count elements of the innermost scalar
//! type ("as a convention, the strides of all shapes specify the distance
//! between the elements of innermost scalar type", §3.3).

use crate::dtype::ScalarType;
use crate::memory::MemSpace;
use graphene_layout::{logical_divide, IntTuple, Layout, LayoutError, Swizzle};
use graphene_sym::IntExpr;
use std::fmt;

/// The element type of a tensor: either a scalar or a nested tile.
#[derive(Debug, Clone, PartialEq)]
pub enum Elem {
    /// A scalar element.
    Scalar(ScalarType),
    /// A tile: the elements of the outer shape are smaller nested tensors.
    Tile(Box<TensorType>),
}

impl Elem {
    /// The innermost scalar type.
    pub fn scalar(&self) -> ScalarType {
        match self {
            Elem::Scalar(s) => *s,
            Elem::Tile(t) => t.elem.scalar(),
        }
    }

    /// Number of scalar elements represented by one element of this type.
    pub fn scalar_count(&self) -> i64 {
        match self {
            Elem::Scalar(_) => 1,
            Elem::Tile(t) => t.num_scalars(),
        }
    }
}

/// The type of a data tensor: a layout plus a (possibly nested) element
/// type.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorType {
    /// Arrangement of the elements (tiles or scalars).
    pub layout: Layout,
    /// What each element is.
    pub elem: Elem,
    /// Optional XOR swizzle applied to physical scalar offsets (used for
    /// bank-conflict-free shared-memory layouts).
    pub swizzle: Swizzle,
}

impl TensorType {
    /// A tensor of scalars with the given layout.
    pub fn scalar(layout: Layout, st: ScalarType) -> Self {
        TensorType { layout, elem: Elem::Scalar(st), swizzle: Swizzle::identity() }
    }

    /// A row-major tensor of scalars.
    pub fn row_major(dims: &[i64], st: ScalarType) -> Self {
        TensorType::scalar(Layout::row_major(dims), st)
    }

    /// A column-major tensor of scalars.
    pub fn column_major(dims: &[i64], st: ScalarType) -> Self {
        TensorType::scalar(Layout::column_major(dims), st)
    }

    /// Attaches a swizzle to this type (returns a modified copy).
    pub fn with_swizzle(mut self, swizzle: Swizzle) -> Self {
        self.swizzle = swizzle;
        self
    }

    /// The innermost scalar type.
    pub fn scalar_type(&self) -> ScalarType {
        self.elem.scalar()
    }

    /// Total number of scalars in the tensor (all levels).
    pub fn num_scalars(&self) -> i64 {
        self.layout.size() * self.elem.scalar_count()
    }

    /// Total bytes of all scalars.
    pub fn bytes(&self) -> u64 {
        self.num_scalars() as u64 * self.scalar_type().bytes()
    }

    /// Returns the nested tile type, if this tensor is tiled.
    pub fn tile_elem(&self) -> Option<&TensorType> {
        match &self.elem {
            Elem::Tile(t) => Some(t),
            Elem::Scalar(_) => None,
        }
    }

    /// Tiles this tensor (paper §3.3, Figure 4).
    ///
    /// `tilers[i]` is the 1-D *tile-size tensor* for dimension `i`:
    /// - `Some([n:1])` groups `n` logically adjacent elements,
    /// - `Some([n:s])` groups `n` elements `s` apart (non-contiguous
    ///   tiles, Figure 4c),
    /// - `Some([(a,b):(x,y)])` hierarchical tile sizes (Figure 4d),
    /// - `None` (written `_` in the paper) keeps the whole dimension in
    ///   the tile.
    ///
    /// The result's outer shape arranges the tiles; its element type is
    /// the tile. Strides of the result derive from this tensor's strides
    /// automatically.
    ///
    /// ```
    /// use graphene_ir::dtype::ScalarType;
    /// use graphene_ir::tensor::TensorType;
    ///
    /// // Figure 4b: tile a row-major 4x8 into 2x4 tiles.
    /// let a = TensorType::row_major(&[4, 8], ScalarType::F32);
    /// let b = a.tile_contiguous(&[Some(2), Some(4)])?;
    /// assert_eq!(b.layout.size(), 4);               // 2x2 tiles
    /// assert_eq!(b.tile_elem().unwrap().layout.size(), 8); // 2x4 elements
    /// # Ok::<(), graphene_layout::LayoutError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error if a tiler does not divide its dimension or if
    /// more tilers than dimensions are given.
    pub fn tile(&self, tilers: &[Option<Layout>]) -> Result<TensorType, LayoutError> {
        if tilers.len() > self.layout.rank() {
            return Err(LayoutError::RankMismatch {
                layout_rank: self.layout.rank(),
                tiler_rank: tilers.len(),
            });
        }
        let mut tile_modes = Vec::with_capacity(self.layout.rank());
        let mut rest_modes = Vec::with_capacity(self.layout.rank());
        for i in 0..self.layout.rank() {
            let mode = self.layout.mode(i);
            match tilers.get(i).and_then(|t| t.as_ref()) {
                Some(tiler) => {
                    let divided = logical_divide(&mode, tiler)?;
                    tile_modes.push(divided.mode(0));
                    rest_modes.push(divided.mode(1));
                }
                None => {
                    rest_modes.push(Layout::new(IntTuple::Int(1), IntTuple::Int(0)));
                    tile_modes.push(mode);
                }
            }
        }
        let inner = TensorType {
            layout: Layout::from_modes(&tile_modes),
            elem: self.elem.clone(),
            swizzle: self.swizzle,
        };
        Ok(TensorType {
            layout: Layout::from_modes(&rest_modes),
            elem: Elem::Tile(Box::new(inner)),
            swizzle: self.swizzle,
        })
    }

    /// Convenience: tile with plain contiguous tile sizes (`[n:1]` per
    /// dimension); `None` entries keep whole dimensions.
    pub fn tile_contiguous(&self, sizes: &[Option<i64>]) -> Result<TensorType, LayoutError> {
        let tilers: Vec<Option<Layout>> = sizes.iter().map(|s| s.map(Layout::contiguous)).collect();
        self.tile(&tilers)
    }

    /// Enumerates the view's scalar offsets (relative to the view's base
    /// offset) in *value order*: outer tile modes colexicographic,
    /// elements within a tile fastest. This single definition is shared
    /// by the simulator's address resolution and the code generator's
    /// per-element emission, so the two can never disagree on element
    /// order.
    pub fn scalar_offsets(&self) -> Vec<i64> {
        match self.tile_elem() {
            None => self.layout.indices(),
            Some(inner) => {
                let inner_offs = inner.scalar_offsets();
                let mut out = Vec::with_capacity((self.layout.size() as usize) * inner_offs.len());
                for o in self.layout.indices() {
                    for &i in &inner_offs {
                        out.push(o + i);
                    }
                }
                out
            }
        }
    }

    /// Computes the scalar-element offset of the element selected by
    /// symbolic per-mode coordinates (used when indexing a tiled tensor,
    /// e.g. `%9 = %6[@bid_m, 0]`).
    ///
    /// Each coordinate addresses one top-level mode; hierarchical modes
    /// are addressed with a *linear* coordinate that is decomposed
    /// colexicographically, mirroring [`Layout::crd2idx`] symbolically.
    ///
    /// # Panics
    ///
    /// Panics if the number of coordinates differs from the rank.
    pub fn offset_of(&self, coords: &[IntExpr]) -> IntExpr {
        assert_eq!(
            coords.len(),
            self.layout.rank(),
            "expected {} coordinates for {}, got {}",
            self.layout.rank(),
            self.layout,
            coords.len()
        );
        let mut total = IntExpr::zero();
        for (i, coord) in coords.iter().enumerate() {
            let mode = self.layout.mode(i);
            total = total + sym_crd2idx(coord, mode.shape(), mode.stride());
        }
        total
    }
}

/// Symbolic version of the coordinate→index dot product: a linear
/// coordinate over a (possibly hierarchical) mode is decomposed
/// colexicographically with `/` and `%`.
pub(crate) fn sym_crd2idx(coord: &IntExpr, shape: &IntTuple, stride: &IntTuple) -> IntExpr {
    match (shape, stride) {
        (IntTuple::Int(s), IntTuple::Int(d)) => {
            let _ = s;
            coord.clone() * *d
        }
        (IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
            let mut acc = IntExpr::zero();
            let mut div = 1i64;
            for (i, (s, d)) in ss.iter().zip(ds).enumerate() {
                let sz = s.size();
                let sub = if i + 1 == ss.len() {
                    coord.clone() / div
                } else {
                    (coord.clone() / div) % sz
                };
                acc = acc + sym_crd2idx(&sub, s, d);
                div *= sz;
            }
            acc
        }
        _ => unreachable!("layout invariant: congruent shape/stride"),
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.layout)?;
        match &self.elem {
            Elem::Scalar(s) => write!(f, ".{s}"),
            Elem::Tile(t) => write!(f, ".{t}"),
        }
    }
}

/// A declared tensor value in an IR module: `%name : type . memory`.
///
/// Tensors form view chains: a tensor created by tiling or indexing
/// another refers to its `base` and carries a symbolic scalar-element
/// `offset` from the base's origin.
#[derive(Debug, Clone)]
pub struct TensorDecl {
    /// Value name without the `%` sigil (e.g. `A`, `6`).
    pub name: String,
    /// The tensor's type.
    pub ty: TensorType,
    /// Memory space.
    pub mem: MemSpace,
    /// Root tensor this view derives from (`None` for roots: kernel
    /// parameters and allocations).
    pub base: Option<TensorId>,
    /// Symbolic offset (in scalar elements) from the root tensor's start.
    pub offset: IntExpr,
}

impl TensorDecl {
    /// Displays as the paper writes declarations: `%A:[(16,16):(16,1)].fp16.SH`.
    pub fn render(&self) -> String {
        format!("%{}:{}.{}", self.name, self.ty, self.mem)
    }
}

/// Identifier of a tensor declaration within an IR module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u32);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_layout::it;

    #[test]
    fn display_matches_paper_notation() {
        // A:[16,16].fp16.SH from Figure 1d is row-major [(16,16):(16,1)].
        let ty = TensorType::row_major(&[16, 16], ScalarType::F16);
        assert_eq!(ty.to_string(), "[(16,16):(16,1)].fp16");
        let decl = TensorDecl {
            name: "A".into(),
            ty,
            mem: MemSpace::Shared,
            base: None,
            offset: IntExpr::zero(),
        };
        assert_eq!(decl.render(), "%A:[(16,16):(16,1)].fp16.SH");
    }

    #[test]
    fn tile_figure4b() {
        // B:[2,2].[2,4] with strides as the paper reports.
        let a = TensorType::row_major(&[4, 8], ScalarType::F32);
        let b = a.tile_contiguous(&[Some(2), Some(4)]).unwrap();
        // Outer: 2×2 tiles; strides (16, 4) in scalars: moving one tile
        // down skips 2 rows (16 elems), one tile right skips 4 elems.
        assert_eq!(b.layout.size(), 4);
        let outer_strides = b.layout.stride().leaves();
        assert_eq!(outer_strides, vec![16, 4]);
        // Inner: 2×4 elements, row-major strides (8, 1).
        let inner = b.tile_elem().unwrap();
        assert_eq!(inner.layout.shape().leaves(), vec![2, 4]);
        assert_eq!(inner.layout.stride().leaves(), vec![8, 1]);
        assert_eq!(b.num_scalars(), 32);
    }

    #[test]
    fn tile_noncontiguous_figure4c() {
        // Tile size ([2:2], [4:1]): every other row.
        let a = TensorType::row_major(&[4, 8], ScalarType::F32);
        let c = a.tile(&[Some(Layout::strided(2, 2)), Some(Layout::contiguous(4))]).unwrap();
        let inner = c.tile_elem().unwrap();
        // Tile rows are 2 apart: row stride = 16 scalars.
        assert_eq!(inner.layout.stride().leaves(), vec![16, 1]);
        // Tile arrangement: next row-tile starts at the next row (stride 8).
        assert_eq!(c.layout.stride().leaves(), vec![8, 4]);
    }

    #[test]
    fn tile_hierarchical_figure4d() {
        // Tile size ([2:2], [(2,2):(1,4)]).
        let a = TensorType::row_major(&[4, 8], ScalarType::F32);
        let tiler_cols = Layout::new(it![2, 2], it![1, 4]);
        let d = a.tile(&[Some(Layout::strided(2, 2)), Some(tiler_cols)]).unwrap();
        let inner = d.tile_elem().unwrap();
        assert_eq!(inner.layout.size(), 8);
        // Tile contains rows {0,2} and cols {0,1,4,5}.
        let mut offs: Vec<i64> = inner.layout.indices();
        offs.sort_unstable();
        assert_eq!(offs, vec![0, 1, 4, 5, 16, 17, 20, 21]);
    }

    #[test]
    fn tile_with_wildcard_dimension() {
        // Figure 8 line 12: %6:[8,1].[128,1024] = %1.tile([128, _])
        let a = TensorType::row_major(&[1024, 1024], ScalarType::F16);
        let t = a.tile_contiguous(&[Some(128), None]).unwrap();
        assert_eq!(t.layout.shape().leaves(), vec![8, 1]);
        let inner = t.tile_elem().unwrap();
        assert_eq!(inner.layout.shape().leaves(), vec![128, 1024]);
        assert_eq!(inner.layout.stride().leaves(), vec![1024, 1]);
    }

    #[test]
    fn offset_of_symbolic() {
        let a = TensorType::row_major(&[1024, 1024], ScalarType::F16);
        let t = a.tile_contiguous(&[Some(128), Some(128)]).unwrap();
        let bid_m = IntExpr::var_bounded("bid_m", 8);
        let bid_n = IntExpr::var_bounded("bid_n", 8);
        let off = t.offset_of(&[bid_m, bid_n]);
        // Moving one tile down skips 128 rows = 131072 scalars; one tile
        // right skips 128 scalars — matches Figure 8's generated indexing.
        let s = graphene_sym::simplify(&off).to_string();
        assert!(
            s == "bid_m * 131072 + bid_n * 128" || s == "bid_n * 128 + bid_m * 131072",
            "unexpected offset: {s}"
        );
    }

    #[test]
    fn offset_of_hierarchical_mode_uses_div_mod() {
        // Mode (2,4):(1,8): coordinate j decomposes as (j%2)*1 + (j/2)*8.
        let ty = TensorType {
            layout: Layout::new(it![4, [2, 4]], it![2, [1, 8]]),
            elem: Elem::Scalar(ScalarType::F32),
            swizzle: Swizzle::identity(),
        };
        let j = IntExpr::var_bounded("j", 8);
        let off = ty.offset_of(&[IntExpr::zero(), j.clone()]);
        // Evaluate at j = 3: (3%2)*1 + (3/2)*8 = 1 + 8 = 9.
        let env: std::collections::HashMap<String, i64> = [("j".to_string(), 3)].into();
        assert_eq!(off.eval(&env).unwrap(), 9);
    }

    #[test]
    fn tile_rank_error() {
        let a = TensorType::row_major(&[4, 8], ScalarType::F32);
        assert!(a.tile_contiguous(&[Some(2), Some(2), Some(2)]).is_err());
    }

    #[test]
    fn bytes_and_scalars() {
        let a = TensorType::row_major(&[4, 8], ScalarType::F16);
        assert_eq!(a.num_scalars(), 32);
        assert_eq!(a.bytes(), 64);
        let t = a.tile_contiguous(&[Some(2), Some(4)]).unwrap();
        assert_eq!(t.num_scalars(), 32);
        assert_eq!(t.bytes(), 64);
    }
}
