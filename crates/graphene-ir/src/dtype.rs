//! Scalar element types.
//!
//! The paper's `ScalarType = fp16 | fp32 | i32 | ...` production
//! (§3.1, Figure 2).

use std::fmt;

/// A scalar element type of a Graphene tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// IEEE 754 half precision (`fp16` in the paper's notation).
    F16,
    /// bfloat16.
    BF16,
    /// IEEE 754 single precision (`fp32`).
    F32,
    /// IEEE 754 double precision (`fp64`).
    F64,
    /// 8-bit signed integer.
    I8,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean / predicate.
    Bool,
}

impl ScalarType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ScalarType::I8 | ScalarType::Bool => 1,
            ScalarType::F16 | ScalarType::BF16 => 2,
            ScalarType::F32 | ScalarType::I32 | ScalarType::U32 => 4,
            ScalarType::F64 => 8,
        }
    }

    /// The Graphene notation used in the paper's listings.
    pub fn graphene_name(self) -> &'static str {
        match self {
            ScalarType::F16 => "fp16",
            ScalarType::BF16 => "bf16",
            ScalarType::F32 => "fp32",
            ScalarType::F64 => "fp64",
            ScalarType::I8 => "i8",
            ScalarType::I32 => "i32",
            ScalarType::U32 => "u32",
            ScalarType::Bool => "bool",
        }
    }

    /// The CUDA C++ type name used during code generation.
    pub fn cuda_name(self) -> &'static str {
        match self {
            ScalarType::F16 => "half",
            ScalarType::BF16 => "__nv_bfloat16",
            ScalarType::F32 => "float",
            ScalarType::F64 => "double",
            ScalarType::I8 => "int8_t",
            ScalarType::I32 => "int",
            ScalarType::U32 => "uint32_t",
            ScalarType::Bool => "bool",
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F16 | ScalarType::BF16 | ScalarType::F32 | ScalarType::F64)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.graphene_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(ScalarType::F16.bytes(), 2);
        assert_eq!(ScalarType::F32.bytes(), 4);
        assert_eq!(ScalarType::F64.bytes(), 8);
        assert_eq!(ScalarType::I8.bytes(), 1);
    }

    #[test]
    fn names() {
        assert_eq!(ScalarType::F16.to_string(), "fp16");
        assert_eq!(ScalarType::F16.cuda_name(), "half");
        assert_eq!(ScalarType::F32.cuda_name(), "float");
    }

    #[test]
    fn float_classification() {
        assert!(ScalarType::F16.is_float());
        assert!(ScalarType::BF16.is_float());
        assert!(!ScalarType::I32.is_float());
        assert!(!ScalarType::Bool.is_float());
    }
}
