//! Rendering Graphene IR in the paper's listing notation.
//!
//! Used by `Display` impls, examples, and golden tests. The output
//! mirrors the style of the paper's Figure 1d and Figure 8: tensor
//! declarations with shape/stride annotations, specs with `<<<...>>>`
//! execution configurations, and indented decomposition bodies.

use crate::body::{Body, Stmt};
use crate::module::Module;
use crate::spec::Spec;
use graphene_layout::Layout;

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn tiler_str(tilers: &[Option<Layout>]) -> String {
    let parts: Vec<String> = tilers
        .iter()
        .map(|t| match t {
            Some(l) => l.to_string(),
            None => "_".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// Renders one spec header, e.g. `Move <<<#3, #4>>> (%1) -> (%2)`.
pub fn render_spec_header(module: &Module, spec: &Spec) -> String {
    let exec: Vec<String> = spec.exec.iter().map(|&t| format!("#{}", module[t].name)).collect();
    let ins: Vec<String> = spec.ins.iter().map(|&t| format!("%{}", module[t].name)).collect();
    let outs: Vec<String> = spec.outs.iter().map(|&t| format!("%{}", module[t].name)).collect();
    format!("{} <<<{}>>> ({}) -> ({})", spec.kind, exec.join(", "), ins.join(", "), outs.join(", "))
}

/// Renders a body at the given indentation level.
pub fn render_body(module: &Module, body: &Body, level: usize) -> String {
    let mut out = String::new();
    for stmt in &body.stmts {
        out.push_str(&render_stmt(module, stmt, level));
    }
    out
}

fn render_stmt(module: &Module, stmt: &Stmt, level: usize) -> String {
    let pad = indent(level);
    match stmt {
        Stmt::Tile { result, src, tilers } => {
            format!(
                "{pad}{} = %{}.tile({})\n",
                module[*result].render(),
                module[*src].name,
                tiler_str(tilers)
            )
        }
        Stmt::Index { result, src, coords } => {
            let cs: Vec<String> = coords.iter().map(|c| c.to_string()).collect();
            format!(
                "{pad}{} = %{}[{}]\n",
                module[*result].render(),
                module[*src].name,
                cs.join(", ")
            )
        }
        Stmt::ThreadTile { result, src, tiler } => {
            format!(
                "{pad}{} = #{}.tile([{}])\n",
                module[*result].render(),
                module[*src].name,
                tiler
            )
        }
        Stmt::ThreadReshape { result, src, dims } => {
            format!(
                "{pad}{} = #{}.reshape(0, {:?})\n",
                module[*result].render(),
                module[*src].name,
                dims
            )
        }
        Stmt::Alloc { tensor } => {
            format!("{pad}Allocate {}\n", module[*tensor].render())
        }
        Stmt::For { var, extent, unroll, body } => {
            let mut s = format!(
                "{pad}for ({var} = 0; {var} < {extent}; {var} += 1){}{{\n",
                if *unroll { " /*unroll*/ " } else { " " }
            );
            for st in body {
                s.push_str(&render_stmt(module, st, level + 1));
            }
            s.push_str(&format!("{pad}}}\n"));
            s
        }
        Stmt::If { cond, then } => {
            let mut s = format!("{pad}if ({} < {}) {{\n", cond.lhs, cond.rhs);
            for st in then {
                s.push_str(&render_stmt(module, st, level + 1));
            }
            s.push_str(&format!("{pad}}}\n"));
            s
        }
        Stmt::Spec(spec) => {
            let mut s = format!("{pad}{}", render_spec_header(module, spec));
            match &spec.body {
                Some(body) => {
                    s.push_str(" {\n");
                    for st in &body.stmts {
                        s.push_str(&render_stmt(module, st, level + 1));
                    }
                    s.push_str(&format!("{pad}}}\n"));
                }
                None => s.push('\n'),
            }
            s
        }
        Stmt::Sync(scope) => match scope {
            crate::body::SyncScope::Block => format!("{pad}__syncthreads()\n"),
            crate::body::SyncScope::Warp => format!("{pad}__syncwarp()\n"),
        },
        Stmt::Comment(c) => format!("{pad}// {c}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ScalarType;
    use crate::memory::MemSpace;
    use crate::spec::SpecKind;
    use crate::tensor::TensorType;
    use crate::threads::{ThreadLevel, ThreadTensor};

    #[test]
    fn renders_spec_header() {
        let mut m = Module::new();
        let a = m.declare_tensor(
            "1",
            TensorType::row_major(&[16, 16], ScalarType::F16),
            MemSpace::Shared,
        );
        let b = m.declare_tensor(
            "2",
            TensorType::row_major(&[2, 4], ScalarType::F16),
            MemSpace::Register,
        );
        let w = m.declare_threads(ThreadTensor::new("4", ThreadLevel::Thread, &[32]));
        let spec = Spec::atomic(SpecKind::Move, vec![w], vec![a], vec![b]);
        assert_eq!(render_spec_header(&m, &spec), "Move <<<#4>>> (%1) -> (%2)");
    }

    #[test]
    fn renders_loop_nest() {
        let m = Module::new();
        let body = Body::from_stmts(vec![Stmt::For {
            var: "k".into(),
            extent: 4,
            unroll: true,
            body: vec![Stmt::Comment("inner".into())],
        }]);
        let s = render_body(&m, &body, 0);
        assert!(s.contains("for (k = 0; k < 4; k += 1)"));
        assert!(s.contains("  // inner"));
    }
}
