//! # graphene-ir
//!
//! A from-scratch Rust implementation of the **Graphene** intermediate
//! representation for optimized GPU tensor computations
//! (Hagedorn et al., ASPLOS '23).
//!
//! Graphene represents both multi-dimensional **data** and the GPU's
//! **threads** as first-class, hierarchically decomposable tensors, and
//! expresses optimized kernels as mappings between data tiles and thread
//! tiles:
//!
//! - [`tensor`]: data tensors `name : [dims:strides] . elemtype . memory`
//!   with recursive shapes (hierarchical dimensions, §3.2) and recursive
//!   element types (tiles, §3.3);
//! - [`threads`]: *logical thread groups* (§4) — warps tiled and reshaped
//!   like data, including Volta's non-contiguous quad-pairs;
//! - [`spec`] / [`body`]: *specifications* (§5) for collective
//!   computations (`Move`, `MatMul`, pointwise, `Reduction`, `Shfl`,
//!   `Init`, `Allocate`, generic fused specs) and their decompositions;
//! - [`atomic`]: the instruction-backed *atomic specs* of Table 2 with
//!   per-architecture registries (Volta SM70, Ampere SM86), matching, and
//!   the register-fragment maps of the tensor instructions;
//! - [`module`]: kernels (the outermost spec) and declaration arenas;
//! - [`builder`]: an ergonomic Rust API for writing decompositions (the
//!   paper generates Graphene IR from a Python API; ours is Rust).

#![warn(missing_docs)]

pub mod atomic;
pub mod body;
pub mod builder;
pub mod diag;
pub mod dtype;
pub mod memory;
pub mod module;
pub mod ops;
pub mod printer;
pub mod spec;
pub mod tensor;
pub mod threads;
pub mod transform;
pub mod validate;

pub use atomic::{Arch, AtomicSemantics, AtomicSpec};
pub use body::{Body, Stmt, SyncScope};
pub use diag::{Diagnostic, Severity};
pub use dtype::ScalarType;
pub use memory::MemSpace;
pub use module::{Kernel, Module};
pub use ops::{BinaryOp, ReduceOp, UnaryOp};
pub use spec::{Spec, SpecKind};
pub use tensor::{Elem, TensorDecl, TensorId, TensorType};
pub use threads::{ThreadId, ThreadLevel, ThreadTensor};
