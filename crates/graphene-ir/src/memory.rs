//! GPU memory spaces.
//!
//! The paper's `Memory = GL | SH | RF` production (§3.1, Figure 2):
//! global memory (off-chip), shared memory (on-chip, per thread-block)
//! and registers (thread-local).

use std::fmt;

/// Where a data tensor lives in the GPU memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Off-chip global memory (`GL`).
    Global,
    /// On-chip shared memory, visible to all threads of a block (`SH`).
    Shared,
    /// Thread-local registers (`RF`).
    Register,
}

impl MemSpace {
    /// The two-letter label used in the paper's listings.
    pub fn label(self) -> &'static str {
        match self {
            MemSpace::Global => "GL",
            MemSpace::Shared => "SH",
            MemSpace::Register => "RF",
        }
    }

    /// Returns `true` when a single thread can address this space without
    /// cooperation (registers are private; global and shared are
    /// addressable by many threads).
    pub fn is_thread_private(self) -> bool {
        matches!(self, MemSpace::Register)
    }

    /// Distance from the processing elements: 0 = registers, 1 = shared,
    /// 2 = global. Data movements between adjacent levels are the common
    /// case in optimized kernels.
    pub fn level(self) -> u8 {
        match self {
            MemSpace::Register => 0,
            MemSpace::Shared => 1,
            MemSpace::Global => 2,
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MemSpace::Global.to_string(), "GL");
        assert_eq!(MemSpace::Shared.to_string(), "SH");
        assert_eq!(MemSpace::Register.to_string(), "RF");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(MemSpace::Register.level() < MemSpace::Shared.level());
        assert!(MemSpace::Shared.level() < MemSpace::Global.level());
    }

    #[test]
    fn privacy() {
        assert!(MemSpace::Register.is_thread_private());
        assert!(!MemSpace::Shared.is_thread_private());
    }
}
