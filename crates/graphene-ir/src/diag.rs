//! Structured diagnostics shared by [`crate::validate`] and the
//! `graphene-analysis` crate.
//!
//! Every finding carries a stable machine-readable `code` (`GRA0xx`), a
//! [`Severity`], a human-readable message, and an optional *statement
//! path* locating the offending statement inside the kernel body
//! (e.g. `body > for ks2 (iteration 1) > if (...)`). Diagnostics render
//! both as plain text ([`fmt::Display`]) and as JSON
//! ([`Diagnostic::to_json`] / [`render_json`]) so tools and CI can
//! consume them.
//!
//! # Diagnostic codes
//!
//! | code   | severity | meaning |
//! |--------|----------|---------|
//! | GRA001 | error    | exec config needs more threads than the block has |
//! | GRA002 | error    | undecomposed spec matches no atomic spec |
//! | GRA003 | error    | binary pointwise operand element counts disagree |
//! | GRA004 | error    | move element counts irreconcilable |
//! | GRA005 | error    | shared-memory allocation exceeds the arch limit |
//! | GRA010 | error    | shared-memory race (missing/inadequate barrier) |
//! | GRA011 | warn     | redundant barrier (no shared access since last) |
//! | GRA012 | error    | operand memory space illegal for the atomic spec |
//! | GRA013 | error    | accumulator read before initialisation |
//! | GRA014 | warn/info| shared-memory bank conflicts (graded by factor) |

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never wrong.
    Info,
    /// Suspicious but not definitely incorrect (e.g. bank conflicts).
    Warn,
    /// The kernel is incorrect or un-lowerable.
    Error,
}

impl Severity {
    /// Lower-case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured finding about a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `"GRA010"`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable description of the problem.
    pub message: String,
    /// Statement path from the kernel body to the offending statement
    /// (outermost first). Empty when the finding is kernel-wide.
    pub path: Vec<String>,
}

impl Diagnostic {
    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: Severity::Error, message: message.into(), path: Vec::new() }
    }

    /// A [`Severity::Warn`] diagnostic.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: Severity::Warn, message: message.into(), path: Vec::new() }
    }

    /// An [`Severity::Info`] diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: Severity::Info, message: message.into(), path: Vec::new() }
    }

    /// Attaches a statement path.
    pub fn at(mut self, path: Vec<String>) -> Self {
        self.path = path;
        self
    }

    /// The path rendered as `a > b > c` (empty string for kernel-wide
    /// diagnostics).
    pub fn path_string(&self) -> String {
        self.path.join(" > ")
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":\"{}\",", self.code));
        s.push_str(&format!("\"severity\":\"{}\",", self.severity));
        s.push_str(&format!("\"message\":\"{}\"", json_escape(&self.message)));
        if !self.path.is_empty() {
            s.push_str(&format!(",\"path\":\"{}\"", json_escape(&self.path_string())));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.path.is_empty() {
            write!(f, "\n  at {}", self.path_string())?;
        }
        Ok(())
    }
}

/// Renders a diagnostic list as a JSON document:
/// `{"kernel": ..., "diagnostics": [...], "errors": N}`.
pub fn render_json(kernel_name: &str, diags: &[Diagnostic]) -> String {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!(
        "{{\"kernel\":\"{}\",\"errors\":{},\"diagnostics\":[{}]}}",
        json_escape(kernel_name),
        errors,
        items.join(",")
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn display_includes_code_and_path() {
        let d = Diagnostic::error("GRA010", "race on %As")
            .at(vec!["body".into(), "for ks (iteration 0)".into()]);
        let s = d.to_string();
        assert!(s.contains("error[GRA010]: race on %As"));
        assert!(s.contains("at body > for ks (iteration 0)"));
    }

    #[test]
    fn json_escapes_and_counts_errors() {
        let diags = vec![
            Diagnostic::error("GRA010", "race on \"As\"\nsecond line"),
            Diagnostic::warn("GRA011", "redundant"),
        ];
        let j = render_json("k", &diags);
        assert!(j.contains("\"errors\":1"), "{j}");
        assert!(j.contains("\\\"As\\\"\\nsecond line"), "{j}");
        assert!(j.contains("\"severity\":\"warn\""));
        // The document must be structurally sound enough for a JSON
        // parser: balanced braces/brackets, no raw control characters.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn kernel_wide_diagnostics_omit_path() {
        let d = Diagnostic::warn("GRA014", "conflicts");
        assert!(!d.to_json().contains("path"));
        assert!(!d.to_string().contains("at "));
    }
}
