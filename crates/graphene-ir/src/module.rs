//! IR modules and kernels.
//!
//! A [`Module`] is the arena owning all tensor and thread-tensor
//! declarations of one kernel; a [`Kernel`] is the outermost spec
//! (paper §5.4: "the outermost spec represents the CUDA C++ kernel")
//! together with its launch configuration and parameters.

use crate::body::Body;
use crate::memory::MemSpace;
use crate::tensor::{TensorDecl, TensorId, TensorType};
use crate::threads::{ThreadId, ThreadTensor};
use graphene_sym::IntExpr;
use std::fmt;

/// Arena of declarations for one kernel.
#[derive(Debug, Clone, Default)]
pub struct Module {
    tensors: Vec<TensorDecl>,
    threads: Vec<ThreadTensor>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Declares a root tensor (kernel parameter or allocation).
    pub fn declare_tensor(
        &mut self,
        name: impl Into<String>,
        ty: TensorType,
        mem: MemSpace,
    ) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(TensorDecl {
            name: name.into(),
            ty,
            mem,
            base: None,
            offset: IntExpr::zero(),
        });
        id
    }

    /// Declares a derived view (tile or indexed selection) of `base`.
    pub fn declare_view(
        &mut self,
        name: impl Into<String>,
        ty: TensorType,
        base: TensorId,
        offset: IntExpr,
    ) -> TensorId {
        let base_decl = &self[base];
        let mem = base_decl.mem;
        // Chain to the *root* so offsets are always root-relative.
        let (root, total_offset) = match base_decl.base {
            Some(root) => (root, base_decl.offset.clone() + offset),
            None => (base, offset),
        };
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(TensorDecl {
            name: name.into(),
            ty,
            mem,
            base: Some(root),
            offset: graphene_sym::simplify(&total_offset),
        });
        id
    }

    /// Declares a thread tensor.
    pub fn declare_threads(&mut self, tt: ThreadTensor) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(tt);
        id
    }

    /// The root tensor a view ultimately refers to (itself for roots).
    pub fn root_of(&self, id: TensorId) -> TensorId {
        self[id].base.unwrap_or(id)
    }

    /// Iterates over all tensor declarations with their ids.
    pub fn tensors(&self) -> impl Iterator<Item = (TensorId, &TensorDecl)> {
        self.tensors.iter().enumerate().map(|(i, d)| (TensorId(i as u32), d))
    }

    /// Iterates over all thread tensors with their ids.
    pub fn threads(&self) -> impl Iterator<Item = (ThreadId, &ThreadTensor)> {
        self.threads.iter().enumerate().map(|(i, t)| (ThreadId(i as u32), t))
    }

    /// Number of tensor declarations.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Mutable access to a tensor declaration — used by IR transforms
    /// and by analysis tests that plant targeted defects (e.g. moving an
    /// operand to the wrong memory space).
    pub fn tensor_mut(&mut self, id: TensorId) -> &mut TensorDecl {
        &mut self.tensors[id.0 as usize]
    }
}

impl std::ops::Index<TensorId> for Module {
    type Output = TensorDecl;
    fn index(&self, id: TensorId) -> &TensorDecl {
        &self.tensors[id.0 as usize]
    }
}

impl std::ops::Index<ThreadId> for Module {
    type Output = ThreadTensor;
    fn index(&self, id: ThreadId) -> &ThreadTensor {
        &self.threads[id.0 as usize]
    }
}

/// A complete Graphene kernel: the outermost spec.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (becomes the `__global__` function name).
    pub name: String,
    /// Declaration arena.
    pub module: Module,
    /// Global-memory parameters, in signature order.
    pub params: Vec<TensorId>,
    /// The grid: a `block`-level thread tensor.
    pub grid: ThreadId,
    /// The threads of one block: a `thread`-level thread tensor.
    pub block: ThreadId,
    /// The kernel-level decomposition.
    pub body: Body,
}

impl Kernel {
    /// Number of thread-blocks launched.
    pub fn grid_size(&self) -> i64 {
        self.module[self.grid].count()
    }

    /// Number of threads per block.
    pub fn block_size(&self) -> i64 {
        self.module[self.block].count()
    }

    /// Total shared memory bytes allocated by `Alloc` statements of
    /// shared-memory tensors.
    pub fn shared_bytes(&self) -> u64 {
        let mut total = 0;
        self.body.visit(&mut |s| {
            if let crate::body::Stmt::Alloc { tensor } = s {
                let d = &self.module[*tensor];
                if d.mem == MemSpace::Shared {
                    total += d.ty.bytes();
                }
            }
        });
        total
    }

    /// Registers (scalar elements) allocated per thread by `Alloc`
    /// statements of register tensors.
    pub fn registers_per_thread(&self) -> i64 {
        let mut total = 0;
        self.body.visit(&mut |s| {
            if let crate::body::Stmt::Alloc { tensor } = s {
                let d = &self.module[*tensor];
                if d.mem == MemSpace::Register {
                    total += d.ty.num_scalars();
                }
            }
        });
        total
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// kernel {}", self.name)?;
        for &p in &self.params {
            writeln!(f, "{}", self.module[p].render())?;
        }
        writeln!(f, "{}", self.module[self.grid].render())?;
        writeln!(f, "{}", self.module[self.block].render())?;
        write!(f, "{}", crate::printer::render_body(&self.module, &self.body, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ScalarType;
    use crate::threads::ThreadLevel;

    #[test]
    fn declare_and_index() {
        let mut m = Module::new();
        let a = m.declare_tensor(
            "A",
            TensorType::row_major(&[4, 4], ScalarType::F32),
            MemSpace::Global,
        );
        assert_eq!(m[a].name, "A");
        assert_eq!(m.root_of(a), a);
        assert_eq!(m.num_tensors(), 1);
    }

    #[test]
    fn view_offsets_chain_to_root() {
        let mut m = Module::new();
        let a = m.declare_tensor(
            "A",
            TensorType::row_major(&[16, 16], ScalarType::F32),
            MemSpace::Global,
        );
        let v1 = m.declare_view(
            "v1",
            TensorType::row_major(&[8, 8], ScalarType::F32),
            a,
            IntExpr::constant(64),
        );
        let v2 = m.declare_view(
            "v2",
            TensorType::row_major(&[4, 4], ScalarType::F32),
            v1,
            IntExpr::constant(8),
        );
        assert_eq!(m.root_of(v2), a);
        assert_eq!(m[v2].offset.as_const(), Some(72));
        assert_eq!(m[v2].mem, MemSpace::Global);
    }

    #[test]
    fn thread_declarations() {
        let mut m = Module::new();
        let t = m.declare_threads(ThreadTensor::new("5", ThreadLevel::Thread, &[16, 16]));
        assert_eq!(m[t].count(), 256);
    }
}
