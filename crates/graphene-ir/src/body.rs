//! Decomposition bodies: statements, loops, and tensor manipulations.
//!
//! A spec's decomposition (paper Figure 7) "might contain simple control
//! flow or other nested specs". Graphene additionally provides loops,
//! conditionals (for predication of partial tiles, §3.4), synchronisation
//! barriers, and the tensor-view statements (`tile`, indexing, thread
//! tiling/reshaping) seen throughout Figures 1d and 8.

use crate::spec::Spec;
use crate::tensor::TensorId;
use crate::threads::ThreadId;
use graphene_layout::Layout;
use graphene_sym::IntExpr;

/// A comparison predicate for `If` statements (used to guard
/// out-of-bounds accesses of partial tiles, paper §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left-hand side.
    pub lhs: IntExpr,
    /// `lhs < rhs` is the only comparison Graphene predication needs.
    pub rhs: IntExpr,
}

/// Synchronisation scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncScope {
    /// `__syncthreads()` — all threads of the block.
    Block,
    /// `__syncwarp()` — the threads of a warp.
    Warp,
}

/// A statement within a decomposition body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `%result = %src.tile([...])` — declare a tiled view
    /// (paper §3.3). The resulting declaration lives in the module; the
    /// statement records where in the program the view is introduced.
    Tile {
        /// The new tiled view.
        result: TensorId,
        /// The tensor being tiled.
        src: TensorId,
        /// Per-dimension tile-size tensors (`None` = `_`).
        tilers: Vec<Option<Layout>>,
    },
    /// `%result = %src[coords...]` — select a tile / element.
    Index {
        /// The selected view.
        result: TensorId,
        /// The tensor being indexed.
        src: TensorId,
        /// One coordinate expression per top-level mode.
        coords: Vec<IntExpr>,
    },
    /// `#result = #src.tile([...])` — tile threads into logical groups
    /// (paper §4, Figure 5b).
    ThreadTile {
        /// The tiled thread tensor.
        result: ThreadId,
        /// The source thread tensor.
        src: ThreadId,
        /// Which local threads form one group.
        tiler: Layout,
    },
    /// `#result = #src.reshape(0, dims)` — rearrange logical groups
    /// (paper Figure 5c).
    ThreadReshape {
        /// The reshaped thread tensor.
        result: ThreadId,
        /// The source thread tensor.
        src: ThreadId,
        /// New group dimensions.
        dims: Vec<i64>,
    },
    /// `Allocate` spec (Table 1): introduce a temporary tensor (the
    /// declaration carries memory space and type).
    Alloc {
        /// The tensor being allocated.
        tensor: TensorId,
    },
    /// A counted loop `for (var = 0; var < extent; var += 1)`.
    For {
        /// Loop variable name (becomes an `IntExpr` var bounded by
        /// `extent`).
        var: String,
        /// Trip count.
        extent: i64,
        /// Whether codegen emits `#pragma unroll`.
        unroll: bool,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A guarded block (predication for partial tiles).
    If {
        /// The guard (taken when `lhs < rhs`).
        cond: Predicate,
        /// Guarded statements.
        then: Vec<Stmt>,
    },
    /// A nested specification.
    Spec(Spec),
    /// A synchronisation barrier.
    Sync(SyncScope),
    /// A free-form comment carried through to generated code.
    Comment(String),
}

/// A decomposition body: an ordered list of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    /// The statements, in program order.
    pub stmts: Vec<Stmt>,
}

impl Body {
    /// An empty body.
    pub fn new() -> Self {
        Body { stmts: Vec::new() }
    }

    /// Builds a body from statements.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Self {
        Body { stmts }
    }

    /// Visits every statement in the body recursively (pre-order),
    /// including statements nested in loops, guards, and sub-spec bodies.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::For { body, .. } | Stmt::If { then: body, .. } => walk(body, f),
                    Stmt::Spec(spec) => {
                        if let Some(b) = &spec.body {
                            walk(&b.stmts, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(&self.stmts, f);
    }

    /// Counts statements matching a predicate, recursively.
    pub fn count_stmts(&self, mut pred: impl FnMut(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Spec, SpecKind};

    #[test]
    fn visit_recurses_into_loops_and_specs() {
        let inner = Spec::decomposed(
            SpecKind::Move,
            vec![],
            vec![],
            vec![],
            Body::from_stmts(vec![Stmt::Sync(SyncScope::Warp)]),
        );
        let body = Body::from_stmts(vec![
            Stmt::For { var: "k".into(), extent: 4, unroll: true, body: vec![Stmt::Spec(inner)] },
            Stmt::Sync(SyncScope::Block),
        ]);
        assert_eq!(body.count_stmts(|s| matches!(s, Stmt::Sync(_))), 2);
        assert_eq!(body.count_stmts(|s| matches!(s, Stmt::Spec(_))), 1);
        assert_eq!(body.count_stmts(|s| matches!(s, Stmt::For { .. })), 1);
    }

    #[test]
    fn default_is_empty() {
        assert!(Body::default().stmts.is_empty());
    }
}
