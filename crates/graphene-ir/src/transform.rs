//! IR transformation passes.
//!
//! Graphene "provides the foundation for novel ML compiler research
//! including systematically deriving optimized tensor computations"
//! (paper §8). These passes operate on decomposed kernels after
//! construction: cleanup passes a schedule author shouldn't have to
//! think about, and statistics used by reports and tests.

use crate::body::{Body, Stmt};
use crate::module::Kernel;
use crate::spec::SpecKind;
use crate::tensor::TensorId;
use std::collections::HashSet;

/// Statement statistics of a kernel body (recursively collected).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Undecomposed (atomic-matched) specs.
    pub atomic_specs: usize,
    /// Decomposed specs.
    pub decomposed_specs: usize,
    /// `Move` specs.
    pub moves: usize,
    /// `MatMul` specs.
    pub matmuls: usize,
    /// Pointwise specs (unary + binary).
    pub pointwise: usize,
    /// Reductions and shuffles.
    pub reductions_shuffles: usize,
    /// Loops.
    pub loops: usize,
    /// Predicated blocks.
    pub guards: usize,
    /// Barriers.
    pub syncs: usize,
    /// Allocations.
    pub allocs: usize,
}

/// Collects [`Stats`] for a kernel.
pub fn stats(kernel: &Kernel) -> Stats {
    let mut s = Stats::default();
    kernel.body.visit(&mut |stmt| match stmt {
        Stmt::Spec(spec) => {
            if spec.is_undecomposed() {
                s.atomic_specs += 1;
            } else {
                s.decomposed_specs += 1;
            }
            match spec.kind {
                SpecKind::Move => s.moves += 1,
                SpecKind::MatMul => s.matmuls += 1,
                SpecKind::UnaryPointwise(_) | SpecKind::BinaryPointwise(_) => s.pointwise += 1,
                SpecKind::Reduction { .. } | SpecKind::Shfl { .. } => s.reductions_shuffles += 1,
                _ => {}
            }
        }
        Stmt::For { .. } => s.loops += 1,
        Stmt::If { .. } => s.guards += 1,
        Stmt::Sync(_) => s.syncs += 1,
        Stmt::Alloc { .. } => s.allocs += 1,
        _ => {}
    });
    s
}

/// Removes consecutive duplicate barriers (`__syncthreads();
/// __syncthreads();` → one). Returns the number removed.
///
/// A barrier is redundant when it immediately follows another barrier
/// with no intervening statement that touches memory (comments and
/// compile-time view statements don't).
pub fn remove_redundant_syncs(kernel: &mut Kernel) -> usize {
    fn is_transparent(stmt: &Stmt) -> bool {
        matches!(
            stmt,
            Stmt::Comment(_)
                | Stmt::Tile { .. }
                | Stmt::Index { .. }
                | Stmt::ThreadTile { .. }
                | Stmt::ThreadReshape { .. }
        )
    }
    fn clean(stmts: &mut Vec<Stmt>) -> usize {
        let mut removed = 0;
        // Recurse first.
        for s in stmts.iter_mut() {
            match s {
                Stmt::For { body, .. } | Stmt::If { then: body, .. } => {
                    removed += clean(body);
                }
                Stmt::Spec(spec) => {
                    if let Some(b) = spec.body.as_mut() {
                        removed += clean(&mut b.stmts);
                    }
                }
                _ => {}
            }
        }
        // Then drop syncs that follow a sync with only transparent
        // statements in between.
        let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
        let mut since_sync_only_transparent = false;
        for s in std::mem::take(stmts) {
            match &s {
                Stmt::Sync(_) if since_sync_only_transparent => {
                    removed += 1;
                    continue; // drop duplicate
                }
                Stmt::Sync(_) => {
                    since_sync_only_transparent = true;
                }
                other if is_transparent(other) => {}
                _ => since_sync_only_transparent = false,
            }
            out.push(s);
        }
        *stmts = out;
        removed
    }
    clean(&mut kernel.body.stmts)
}

/// Removes `Alloc` statements for tensors that no spec ever reads or
/// writes (directly or through a view). Returns the ids removed.
pub fn dead_alloc_elimination(kernel: &mut Kernel) -> Vec<TensorId> {
    // Collect roots used by any spec operand.
    let mut used: HashSet<TensorId> = HashSet::new();
    kernel.body.visit(&mut |stmt| {
        if let Stmt::Spec(spec) = stmt {
            for &id in spec.ins.iter().chain(&spec.outs) {
                used.insert(kernel.module.root_of(id));
            }
        }
    });

    let mut removed = Vec::new();
    fn prune(stmts: &mut Vec<Stmt>, used: &HashSet<TensorId>, removed: &mut Vec<TensorId>) {
        for s in stmts.iter_mut() {
            match s {
                Stmt::For { body, .. } | Stmt::If { then: body, .. } => prune(body, used, removed),
                Stmt::Spec(spec) => {
                    if let Some(b) = spec.body.as_mut() {
                        prune(&mut b.stmts, used, removed);
                    }
                }
                _ => {}
            }
        }
        stmts.retain(|s| match s {
            Stmt::Alloc { tensor } if !used.contains(tensor) => {
                removed.push(*tensor);
                false
            }
            _ => true,
        });
    }
    prune(&mut kernel.body.stmts, &used, &mut removed);
    removed
}

/// Runs the standard cleanup pipeline; returns a human-readable summary.
pub fn cleanup(kernel: &mut Kernel) -> String {
    let syncs = remove_redundant_syncs(kernel);
    let allocs = dead_alloc_elimination(kernel);
    format!("removed {syncs} redundant barriers, {} dead allocations", allocs.len())
}

/// Re-exports [`Body`] manipulation used by the passes (kept private to
/// the module otherwise).
pub fn body_len(body: &Body) -> usize {
    body.stmts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::dtype::ScalarType;
    use crate::tensor::TensorType;
    use graphene_layout::Layout;

    fn reg() -> TensorType {
        TensorType::scalar(Layout::contiguous(1), ScalarType::F32)
    }

    #[test]
    fn duplicate_syncs_removed() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        let a = kb.alloc_reg("a", reg());
        kb.sync();
        kb.sync();
        kb.comment("views are transparent");
        kb.sync();
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![ts], vec![], vec![a]);
        kb.sync();
        let mut kernel = kb.build();
        let before = stats(&kernel).syncs;
        assert_eq!(before, 4);
        let removed = remove_redundant_syncs(&mut kernel);
        assert_eq!(removed, 2);
        assert_eq!(stats(&kernel).syncs, 2);
    }

    #[test]
    fn syncs_inside_loops_cleaned() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        kb.for_loop("i", 4, false, |kb, _| {
            kb.sync();
            kb.sync();
        });
        let mut kernel = kb.build();
        assert_eq!(remove_redundant_syncs(&mut kernel), 1);
    }

    #[test]
    fn dead_allocs_removed_live_ones_kept() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        let live = kb.alloc_reg("live", reg());
        let _dead = kb.alloc_reg("dead", reg());
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![ts], vec![], vec![live]);
        let mut kernel = kb.build();
        assert_eq!(stats(&kernel).allocs, 2);
        let removed = dead_alloc_elimination(&mut kernel);
        assert_eq!(removed.len(), 1);
        assert_eq!(kernel.module[removed[0]].name, "dead");
        assert_eq!(stats(&kernel).allocs, 1);
    }

    #[test]
    fn view_usage_keeps_root_alive() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        let root = kb.alloc_reg("root", TensorType::scalar(Layout::contiguous(4), ScalarType::F32));
        // Use only a view of the root.
        let view = kb.view_as(root, reg(), graphene_sym::IntExpr::constant(2));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 1.0 }, vec![ts], vec![], vec![view]);
        let mut kernel = kb.build();
        assert!(dead_alloc_elimination(&mut kernel).is_empty());
    }

    #[test]
    fn stats_classify_spec_kinds() {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let block = kb.block();
        let a = kb.alloc_reg("a", reg());
        let b = kb.alloc_reg("b", reg());
        kb.for_loop("i", 2, false, |kb, _| {
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::MatMul, vec![ts], vec![a, b], vec![b]);
            let ts = kb.thread_scalar(block);
            kb.spec(
                SpecKind::BinaryPointwise(crate::ops::BinaryOp::Add),
                vec![ts],
                vec![a, b],
                vec![b],
            );
        });
        let kernel = kb.build();
        let s = stats(&kernel);
        assert_eq!(s.matmuls, 1);
        assert_eq!(s.pointwise, 1);
        assert_eq!(s.loops, 1);
        assert_eq!(s.allocs, 2);
        assert_eq!(s.atomic_specs, 2);
    }
}
