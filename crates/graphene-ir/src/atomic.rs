//! Atomic specifications: the instruction-backed specs of Table 2.
//!
//! "During code generation, every spec without decomposition is matched
//! against the set of pre-defined atomic specs for the target
//! architecture" (paper §5.2). An [`AtomicSpec`] records the thread
//! arrangement the instruction prescribes, the per-thread operand tensor
//! types, the PTX mnemonic emitted by codegen, and the semantics the
//! simulator executes.

use crate::dtype::ScalarType;
use crate::memory::MemSpace;
use crate::module::Module;
use crate::ops::{BinaryOp, ReduceOp, UnaryOp};
use crate::spec::{Spec, SpecKind};
use crate::tensor::TensorType;
use graphene_layout::{coalesce, it, Layout};
use std::fmt;

/// Target GPU architectures.
///
/// The paper evaluates on Volta (V100, SM70) and Ampere (RTX A6000,
/// SM86); each exposes a different set of tensor instructions (quad-pair
/// `mma.m8n8k4` on Volta; `ldmatrix` + `mma.m16n8k16` on Ampere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Volta (V100).
    Sm70,
    /// Ampere (RTX A6000).
    Sm86,
}

impl Arch {
    /// Marketing name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Sm70 => "Volta",
            Arch::Sm86 => "Ampere",
        }
    }

    /// Maximum shared memory one thread block may allocate (with the
    /// opt-in carve-out both parts support): 96 KiB on V100, 100 KiB on
    /// the GA102-class Ampere parts.
    pub fn smem_limit_bytes(self) -> u64 {
        match self {
            Arch::Sm70 => 96 * 1024,
            Arch::Sm86 => 100 * 1024,
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Executable semantics of an atomic spec, interpreted by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicSemantics {
    /// Per-thread copy: destination view elements take the source view
    /// elements in linear-coordinate order.
    CopyPerThread,
    /// Collective `ldmatrix.xN`: each thread supplies a row address; the
    /// warp redistributes values into the prescribed register fragments
    /// (Figure 1a vs. 1b).
    LdMatrix {
        /// Number of 8×8 matrices (1, 2, or 4).
        num: u8,
        /// Transposed variant (`ldmatrix...trans`): each thread receives
        /// column pairs instead of row pairs — used for B operands of
        /// row.col `mma` instructions.
        trans: bool,
    },
    /// Volta quad-pair `mma.m8n8k4` (each group of 8 threads computes an
    /// 8×8×4 MMA on register fragments).
    MmaVolta884,
    /// Ampere warp-wide `mma.m16n8k16`.
    MmaAmpere16816,
    /// Per-thread fused multiply-add: `out[i] += a[i] * b[i]`.
    FmaPerThread,
    /// Per-thread unary pointwise.
    UnaryPerThread(UnaryOp),
    /// Per-thread binary pointwise.
    BinaryPerThread(BinaryOp),
    /// Warp butterfly shuffle: lane `l` receives lane `l ^ mask`'s value.
    ShflBfly,
    /// Per-thread register init (`mov` immediate).
    InitPerThread,
    /// Per-thread sequential reduction of a register tile.
    ReducePerThread(ReduceOp),
}

/// A per-operand type pattern for matching.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorPattern {
    /// Dimensions per nesting level (outer→inner). A size-1 level is the
    /// empty vector, matching the paper's `[]` scalar notation.
    pub levels: Vec<Vec<i64>>,
    /// Required innermost scalar type.
    pub scalar: ScalarType,
    /// Required memory space.
    pub mem: MemSpace,
    /// If true the operand's scalars must be contiguous in memory
    /// (vectorised loads/stores).
    pub contiguous: bool,
    /// If true the memory space is not checked. Used by per-thread
    /// compute instructions: the paper's Figure 8 matches a `MatMul` on
    /// `[].fp16.GL` operands against the `hfma` atomic spec — codegen
    /// folds the loads into the compute statement.
    pub any_mem: bool,
    /// If true any shape matches (`Init` and per-thread `Reduction`
    /// work on tiles of any arrangement).
    pub any_shape: bool,
    /// With `any_shape`: require exactly this many scalars (vectorised
    /// moves match `[8]` and `[1,8]` views alike).
    pub scalars: Option<i64>,
}

impl TensorPattern {
    /// Builds a pattern; `levels` lists the shape dims of each nesting
    /// level (`&[]` for a scalar level).
    pub fn new(levels: &[&[i64]], scalar: ScalarType, mem: MemSpace) -> Self {
        TensorPattern {
            levels: levels.iter().map(|l| l.to_vec()).collect(),
            scalar,
            mem,
            contiguous: false,
            any_mem: false,
            any_shape: false,
            scalars: None,
        }
    }

    /// Relaxes the shape to "any arrangement of exactly `n` scalars".
    pub fn with_scalars(mut self, n: i64) -> Self {
        self.any_shape = true;
        self.scalars = Some(n);
        self
    }

    /// Relaxes the shape requirement (element-count-agnostic ops).
    pub fn any_shape(mut self) -> Self {
        self.any_shape = true;
        self
    }

    /// Relaxes the memory-space requirement (per-thread compute
    /// instructions may read/write any addressable space).
    pub fn any_mem(mut self) -> Self {
        self.any_mem = true;
        self
    }

    /// Requires contiguous scalars.
    pub fn contiguous(mut self) -> Self {
        self.contiguous = true;
        self
    }

    /// Does a concrete tensor type in `mem` match this pattern?
    pub fn matches(&self, ty: &TensorType, mem: MemSpace) -> bool {
        if (!self.any_mem && mem != self.mem) || ty.scalar_type() != self.scalar {
            return false;
        }
        if !self.any_shape && type_signature(ty) != self.levels {
            return false;
        }
        if let Some(n) = self.scalars {
            if ty.num_scalars() != n {
                return false;
            }
        }
        if self.contiguous && !is_contiguous(ty) {
            return false;
        }
        true
    }
}

/// Shape signature: dims per nesting level; size-1 levels are `[]`.
pub fn type_signature(ty: &TensorType) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut cur = ty;
    loop {
        let dims: Vec<i64> = if cur.layout.size() == 1 {
            Vec::new()
        } else {
            // Per-top-level-mode sizes: distinguishes [4,1] from [4] and
            // [2,2] from [4] as Table 2 requires.
            (0..cur.layout.rank()).map(|i| cur.layout.mode(i).shape().size()).collect()
        };
        out.push(dims);
        match cur.tile_elem() {
            Some(t) => cur = t,
            None => break,
        }
    }
    out
}

/// Are the tensor's scalars contiguous (after coalescing, a single
/// unit-stride mode)?
pub fn is_contiguous(ty: &TensorType) -> bool {
    match ty.tile_elem() {
        Some(inner) => ty.layout.size() == 1 && is_contiguous(inner),
        None => {
            if ty.num_scalars() == 1 {
                return true;
            }
            let c = coalesce(&ty.layout);
            c.rank() == 1 && c.stride().leaves() == vec![1]
        }
    }
}

/// Cost metadata for one execution of the instruction (per thread group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrCost {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Executes on the tensor-core pipe.
    pub tensor_core: bool,
}

/// An atomic specification: an instruction-backed spec (Table 2).
#[derive(Debug, Clone)]
pub struct AtomicSpec {
    /// Short name, e.g. `ldmatrix.x4`.
    pub name: &'static str,
    /// The PTX instruction (Table 2 right column).
    pub ptx: &'static str,
    /// Spec family this instruction implements.
    pub kind: SpecKind,
    /// Required *local* thread-group layout (Table 2 "Threads" column):
    /// `[1]` for per-thread instructions, `[32:1]` for warp-wide,
    /// `[(4,2):(1,16)]` for quad-pairs.
    pub exec_local: Layout,
    /// Per-thread input operand patterns.
    pub ins: Vec<TensorPattern>,
    /// Per-thread output operand patterns.
    pub outs: Vec<TensorPattern>,
    /// Simulator semantics.
    pub semantics: AtomicSemantics,
    /// Cost per execution (per group).
    pub cost: InstrCost,
}

impl AtomicSpec {
    /// Does `spec` (undecomposed, in `module`) match this atomic spec?
    pub fn matches(&self, spec: &Spec, module: &Module) -> bool {
        if !self.kind.same_family(&spec.kind) {
            return false;
        }
        // Match the innermost exec entry's local layout.
        let Some(&exec) = spec.exec.last() else { return false };
        let tt = &module[exec];
        if tt.level != crate::threads::ThreadLevel::Thread {
            return false;
        }
        if coalesce(&tt.local) != coalesce(&self.exec_local) {
            return false;
        }
        if spec.ins.len() != self.ins.len() || spec.outs.len() != self.outs.len() {
            return false;
        }
        let operands_ok = |ids: &[crate::tensor::TensorId], pats: &[TensorPattern]| {
            ids.iter().zip(pats).all(|(&id, pat)| {
                let d = &module[id];
                pat.matches(&d.ty, d.mem)
            })
        };
        operands_ok(&spec.ins, &self.ins) && operands_ok(&spec.outs, &self.outs)
    }
}

/// The quad-pair thread layout required by Volta tensor cores
/// (paper Figure 6): `[(4,2):(1,16)]`.
pub fn quad_pair_layout() -> Layout {
    Layout::new(it![4, 2], it![1, 16])
}

/// Builds the atomic-spec registry for an architecture.
///
/// Rows mirror and extend the paper's Table 2. Volta (SM70) exposes the
/// quad-pair `mma.m8n8k4`; Ampere (SM86) exposes `ldmatrix` and
/// `mma.m16n8k16`; scalar/vector moves and pointwise instructions are
/// common to both.
pub fn registry(arch: Arch) -> Vec<AtomicSpec> {
    use MemSpace::{Global, Register, Shared};
    use ScalarType::{BF16, F16, F32};

    let t1 = Layout::contiguous(1);
    let warp = Layout::contiguous(32);
    let pat = TensorPattern::new;

    let mut specs: Vec<AtomicSpec> = Vec::new();

    // --- Moves: global <-> registers -------------------------------------
    for (name, ptx, st, dims, src, dst) in [
        ("ld.global.f32", "ld.global.u32", F32, &[][..], Global, Register),
        ("ld.global.v4.f32", "ld.global.v4.u32", F32, &[4i64][..], Global, Register),
        ("ld.global.f16", "ld.global.u16", F16, &[][..], Global, Register),
        ("ld.global.v2.f16", "ld.global.u32", F16, &[2][..], Global, Register),
        ("ld.global.v4.f16", "ld.global.v2.u32", F16, &[4][..], Global, Register),
        ("ld.global.v8.f16", "ld.global.v4.u32", F16, &[8][..], Global, Register),
        ("ld.global.v2.f32", "ld.global.v2.u32", F32, &[2][..], Global, Register),
        ("ld.global.v8.f32", "2x ld.global.v4.u32", F32, &[8][..], Global, Register),
        ("st.global.f32", "st.global.u32", F32, &[][..], Register, Global),
        ("st.global.v4.f32", "st.global.v4.u32", F32, &[4][..], Register, Global),
        ("st.global.f16", "st.global.u16", F16, &[][..], Register, Global),
        ("st.global.v2.f16", "st.global.u32", F16, &[2][..], Register, Global),
        ("st.global.v4.f16", "st.global.v2.u32", F16, &[4][..], Register, Global),
        ("st.global.v8.f16", "st.global.v4.u32", F16, &[8][..], Register, Global),
        ("st.global.v2.f32", "st.global.v2.u32", F32, &[2][..], Register, Global),
        ("st.global.v8.f32", "2x st.global.v4.u32", F32, &[8][..], Register, Global),
        ("ld.shared.f32", "ld.shared.u32", F32, &[][..], Shared, Register),
        ("ld.shared.v4.f32", "ld.shared.v4.u32", F32, &[4][..], Shared, Register),
        ("ld.shared.f16", "ld.shared.u16", F16, &[][..], Shared, Register),
        ("ld.shared.v2.f16", "ld.shared.u32", F16, &[2][..], Shared, Register),
        ("ld.shared.v4.f16", "ld.shared.v2.u32", F16, &[4][..], Shared, Register),
        ("ld.shared.v8.f16", "ld.shared.v4.u32", F16, &[8][..], Shared, Register),
        ("ld.shared.v2.f32", "ld.shared.v2.u32", F32, &[2][..], Shared, Register),
        ("ld.shared.v8.f32", "2x ld.shared.v4.u32", F32, &[8][..], Shared, Register),
        ("st.shared.f32", "st.shared.u32", F32, &[][..], Register, Shared),
        ("st.shared.v4.f32", "st.shared.v4.u32", F32, &[4][..], Register, Shared),
        ("st.shared.f16", "st.shared.u16", F16, &[][..], Register, Shared),
        ("st.shared.v2.f16", "st.shared.u32", F16, &[2][..], Register, Shared),
        ("st.shared.v4.f16", "st.shared.v2.u32", F16, &[4][..], Register, Shared),
        ("st.shared.v8.f16", "st.shared.v4.u32", F16, &[8][..], Register, Shared),
        ("st.shared.v2.f32", "st.shared.v2.u32", F32, &[2][..], Register, Shared),
        ("st.shared.v8.f32", "2x st.shared.v4.u32", F32, &[8][..], Register, Shared),
        ("mov.f32", "mov.b32", F32, &[][..], Register, Register),
        ("mov.f16", "mov.b16", F16, &[][..], Register, Register),
        // bfloat16 mirrors the fp16 data movements bit-for-bit.
        ("ld.global.bf16", "ld.global.u16", BF16, &[][..], Global, Register),
        ("ld.global.v2.bf16", "ld.global.u32", BF16, &[2][..], Global, Register),
        ("ld.global.v8.bf16", "ld.global.v4.u32", BF16, &[8][..], Global, Register),
        ("st.global.bf16", "st.global.u16", BF16, &[][..], Register, Global),
        ("st.global.v8.bf16", "st.global.v4.u32", BF16, &[8][..], Register, Global),
        ("ld.shared.bf16", "ld.shared.u16", BF16, &[][..], Shared, Register),
        ("ld.shared.v8.bf16", "ld.shared.v4.u32", BF16, &[8][..], Shared, Register),
        ("st.shared.bf16", "st.shared.u16", BF16, &[][..], Register, Shared),
        ("st.shared.v8.bf16", "st.shared.v4.u32", BF16, &[8][..], Register, Shared),
    ] {
        let n: i64 = dims.iter().product::<i64>().max(1);
        let mut in_pat = pat(&[dims], st, src).with_scalars(n);
        let mut out_pat = pat(&[dims], st, dst).with_scalars(n);
        if n > 1 {
            // Vectorised ld/st require the non-register side contiguous.
            if src != Register {
                in_pat = in_pat.contiguous();
            }
            if dst != Register {
                out_pat = out_pat.contiguous();
            }
        }
        specs.push(AtomicSpec {
            name,
            ptx,
            kind: SpecKind::Move,
            exec_local: t1.clone(),
            ins: vec![in_pat],
            outs: vec![out_pat],
            semantics: AtomicSemantics::CopyPerThread,
            cost: InstrCost::default(),
        });
    }

    // Type-converting moves (cvt + ld/st): fp32 accumulators exit to
    // fp16 tensors, and fp16 inputs promote into fp32 register math.
    for (name, ptx, dims, s_st, s_mem, d_st, d_mem) in [
        (
            "cvt.st.global.f32f16",
            "cvt.rn.f16.f32 + st.global.u16",
            &[][..],
            F32,
            Register,
            F16,
            Global,
        ),
        (
            "cvt.st.global.v2.f32f16",
            "cvt.rn.f16x2.f32 + st.global.u32",
            &[2][..],
            F32,
            Register,
            F16,
            Global,
        ),
        (
            "cvt.st.global.v4.f32f16",
            "cvt.rn.f16x2.f32 + st.global.v2.u32",
            &[4][..],
            F32,
            Register,
            F16,
            Global,
        ),
        (
            "cvt.st.global.v8.f32f16",
            "cvt.rn.f16x2.f32 + st.global.v4.u32",
            &[8][..],
            F32,
            Register,
            F16,
            Global,
        ),
        (
            "cvt.st.shared.f32f16",
            "cvt.rn.f16.f32 + st.shared.u16",
            &[][..],
            F32,
            Register,
            F16,
            Shared,
        ),
        (
            "cvt.st.shared.v2.f32f16",
            "cvt.rn.f16x2.f32 + st.shared.u32",
            &[2][..],
            F32,
            Register,
            F16,
            Shared,
        ),
        (
            "cvt.st.shared.v4.f32f16",
            "cvt.rn.f16x2.f32 + st.shared.v2.u32",
            &[4][..],
            F32,
            Register,
            F16,
            Shared,
        ),
        (
            "cvt.st.shared.v8.f32f16",
            "cvt.rn.f16x2.f32 + st.shared.v4.u32",
            &[8][..],
            F32,
            Register,
            F16,
            Shared,
        ),
        (
            "ld.global.cvt.f16f32",
            "ld.global.u16 + cvt.f32.f16",
            &[][..],
            F16,
            Global,
            F32,
            Register,
        ),
        (
            "ld.shared.cvt.f16f32",
            "ld.shared.u16 + cvt.f32.f16",
            &[][..],
            F16,
            Shared,
            F32,
            Register,
        ),
        (
            "ld.global.cvt.v2.f16f32",
            "ld.global.u32 + cvt.f32.f16x2",
            &[2][..],
            F16,
            Global,
            F32,
            Register,
        ),
        (
            "ld.global.cvt.v4.f16f32",
            "ld.global.v2.u32 + cvt.f32.f16x2",
            &[4][..],
            F16,
            Global,
            F32,
            Register,
        ),
        (
            "ld.shared.cvt.v4.f16f32",
            "ld.shared.v2.u32 + cvt.f32.f16x2",
            &[4][..],
            F16,
            Shared,
            F32,
            Register,
        ),
        (
            "ld.shared.cvt.v2.f16f32",
            "ld.shared.u32 + cvt.f32.f16x2",
            &[2][..],
            F16,
            Shared,
            F32,
            Register,
        ),
        (
            "ld.shared.cvt.v8.f16f32",
            "ld.shared.v4.u32 + cvt.f32.f16",
            &[8][..],
            F16,
            Shared,
            F32,
            Register,
        ),
        (
            "ld.global.cvt.v8.f16f32",
            "ld.global.v4.u32 + cvt.f32.f16",
            &[8][..],
            F16,
            Global,
            F32,
            Register,
        ),
        ("cvt.mov.f32f16", "cvt.rn.f16.f32", &[][..], F32, Register, F16, Register),
        ("cvt.mov.f16f32", "cvt.f32.f16", &[][..], F16, Register, F32, Register),
    ] {
        let n: i64 = dims.iter().product::<i64>().max(1);
        let mut in_pat = pat(&[dims], s_st, s_mem).with_scalars(n);
        let mut out_pat = pat(&[dims], d_st, d_mem).with_scalars(n);
        if n > 1 {
            if s_mem != Register {
                in_pat = in_pat.contiguous();
            }
            if d_mem != Register {
                out_pat = out_pat.contiguous();
            }
        }
        specs.push(AtomicSpec {
            name,
            ptx,
            kind: SpecKind::Move,
            exec_local: t1.clone(),
            ins: vec![in_pat],
            outs: vec![out_pat],
            semantics: AtomicSemantics::CopyPerThread,
            cost: InstrCost::default(),
        });
    }

    if arch == Arch::Sm86 {
        // cp.async: global -> shared without a register round-trip.
        for (name, ptx, n) in [
            ("cp.async.v8.f16", "cp.async.ca.shared.global [dst], [src], 16", 8i64),
            ("cp.async.v4.f16", "cp.async.ca.shared.global [dst], [src], 8", 4),
            ("cp.async.v2.f16", "cp.async.ca.shared.global [dst], [src], 4", 2),
        ] {
            specs.push(AtomicSpec {
                name,
                ptx,
                kind: SpecKind::Move,
                exec_local: t1.clone(),
                ins: vec![pat(&[&[n]], F16, Global).contiguous().with_scalars(n)],
                outs: vec![pat(&[&[n]], F16, Shared).contiguous().with_scalars(n)],
                semantics: AtomicSemantics::CopyPerThread,
                cost: InstrCost::default(),
            });
        }
        // ldmatrix: warp-collective shared -> register fragments
        // (Table 2 row 4: in [1,8].fp16.SH, out [2,2].[1,2].fp16.RF).
        specs.push(AtomicSpec {
            name: "ldmatrix.x4",
            ptx: "ldmatrix.sync.aligned.m8n8.x4.shared.b16",
            kind: SpecKind::Move,
            exec_local: warp.clone(),
            ins: vec![pat(&[&[1, 8]], F16, Shared)],
            outs: vec![pat(&[&[2, 2], &[1, 2]], F16, Register)],
            semantics: AtomicSemantics::LdMatrix { num: 4, trans: false },
            cost: InstrCost::default(),
        });
        specs.push(AtomicSpec {
            name: "ldmatrix.x2",
            ptx: "ldmatrix.sync.aligned.m8n8.x2.shared.b16",
            kind: SpecKind::Move,
            exec_local: warp.clone(),
            ins: vec![pat(&[&[1, 8]], F16, Shared)],
            outs: vec![pat(&[&[2, 1], &[1, 2]], F16, Register)],
            semantics: AtomicSemantics::LdMatrix { num: 2, trans: false },
            cost: InstrCost::default(),
        });
        // Transposed variants: the per-thread source view is a *column*
        // (8 rows x 1 col for x4, matching B operands of row.col mma).
        specs.push(AtomicSpec {
            name: "ldmatrix.x4.trans",
            ptx: "ldmatrix.sync.aligned.m8n8.x4.trans.shared.b16",
            kind: SpecKind::Move,
            exec_local: warp.clone(),
            ins: vec![pat(&[&[1, 8]], F16, Shared)],
            outs: vec![pat(&[&[2, 2], &[2, 1]], F16, Register)],
            semantics: AtomicSemantics::LdMatrix { num: 4, trans: true },
            cost: InstrCost::default(),
        });
        specs.push(AtomicSpec {
            name: "ldmatrix.x2.trans",
            ptx: "ldmatrix.sync.aligned.m8n8.x2.trans.shared.b16",
            kind: SpecKind::Move,
            exec_local: warp.clone(),
            ins: vec![pat(&[&[1, 8]], F16, Shared)],
            outs: vec![pat(&[&[2, 1], &[2, 1]], F16, Register)],
            semantics: AtomicSemantics::LdMatrix { num: 2, trans: true },
            cost: InstrCost::default(),
        });
    }

    // --- MatMul -----------------------------------------------------------
    for (name, ptx, st, dims, flops) in [
        ("hfma", "fma.rn.f16", F16, &[][..], 2u64),
        ("hfma2", "fma.rn.f16x2", F16, &[2][..], 4),
        ("fmaf", "fma.rn.f32", F32, &[][..], 2),
    ] {
        specs.push(AtomicSpec {
            name,
            ptx,
            kind: SpecKind::MatMul,
            exec_local: t1.clone(),
            ins: vec![pat(&[dims], st, Register).any_mem(), pat(&[dims], st, Register).any_mem()],
            outs: vec![pat(&[dims], st, Register).any_mem()],
            semantics: AtomicSemantics::FmaPerThread,
            cost: InstrCost { flops, tensor_core: false },
        });
    }
    match arch {
        Arch::Sm70 => {
            // Volta quad-pair tensor core (Table 2 row "mma.m8n8k4").
            specs.push(AtomicSpec {
                name: "mma.m8n8k4",
                ptx: "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32",
                kind: SpecKind::MatMul,
                exec_local: quad_pair_layout(),
                ins: vec![pat(&[&[4, 1]], F16, Register), pat(&[&[1, 4]], F16, Register)],
                outs: vec![pat(&[&[2, 4]], F32, Register)],
                semantics: AtomicSemantics::MmaVolta884,
                cost: InstrCost { flops: 2 * 8 * 8 * 4, tensor_core: true },
            });
        }
        Arch::Sm86 => {
            // Ampere warp-wide tensor core (Table 2 last row).
            specs.push(AtomicSpec {
                name: "mma.m16n8k16.bf16",
                ptx: "mma.sync.aligned.m16n8k16.row.col.f32.bf16.bf16.f32",
                kind: SpecKind::MatMul,
                exec_local: warp.clone(),
                ins: vec![
                    pat(&[&[2, 2], &[1, 2]], BF16, Register),
                    pat(&[&[2, 1], &[2, 1]], BF16, Register),
                ],
                outs: vec![pat(&[&[2, 1], &[1, 2]], F32, Register)],
                semantics: AtomicSemantics::MmaAmpere16816,
                cost: InstrCost { flops: 2 * 16 * 8 * 16, tensor_core: true },
            });
            specs.push(AtomicSpec {
                name: "mma.m16n8k16",
                ptx: "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32",
                kind: SpecKind::MatMul,
                exec_local: warp.clone(),
                ins: vec![
                    pat(&[&[2, 2], &[1, 2]], F16, Register),
                    pat(&[&[2, 1], &[2, 1]], F16, Register),
                ],
                outs: vec![pat(&[&[2, 1], &[1, 2]], F32, Register)],
                semantics: AtomicSemantics::MmaAmpere16816,
                cost: InstrCost { flops: 2 * 16 * 8 * 16, tensor_core: true },
            });
        }
    }

    // --- Pointwise --------------------------------------------------------
    for op in
        [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div, BinaryOp::Max, BinaryOp::Min]
    {
        for (st, dims, name, ptx, flops) in [
            (F32, &[][..], "f32.pw", "f32 pointwise op", 1u64),
            (F32, &[2][..], "f32x2.pw", "f32x2 pointwise op", 2),
            (F32, &[4][..], "f32x4.pw", "f32x4 pointwise op", 4),
            (F32, &[8][..], "f32x8.pw", "unrolled f32 pointwise ops", 8),
            (F32, &[16][..], "f32x16.pw", "unrolled f32 pointwise ops", 16),
            (F32, &[32][..], "f32x32.pw", "unrolled f32 pointwise ops", 32),
            (F32, &[64][..], "f32x64.pw", "unrolled f32 pointwise ops", 64),
            (F32, &[128][..], "f32x128.pw", "unrolled f32 pointwise ops", 128),
            (F16, &[][..], "f16.pw", "f16 pointwise op", 1),
            (F16, &[2][..], "f16x2.pw", "f16x2 pointwise op", 2),
            (F16, &[4][..], "f16x4.pw", "unrolled f16x2 pointwise ops", 4),
            (F16, &[8][..], "f16x8.pw", "unrolled f16x2 pointwise ops", 8),
            (F16, &[16][..], "f16x16.pw", "unrolled f16x2 pointwise ops", 16),
        ] {
            specs.push(AtomicSpec {
                name,
                ptx,
                kind: SpecKind::BinaryPointwise(op),
                exec_local: t1.clone(),
                ins: vec![
                    pat(&[dims], st, Register).any_mem(),
                    pat(&[dims], st, Register).any_mem(),
                ],
                outs: vec![pat(&[dims], st, Register).any_mem()],
                semantics: AtomicSemantics::BinaryPerThread(op),
                cost: InstrCost { flops, tensor_core: false },
            });
        }
    }
    for op in [
        UnaryOp::Exp,
        UnaryOp::Relu,
        UnaryOp::Tanh,
        UnaryOp::Sigmoid,
        UnaryOp::Gelu,
        UnaryOp::Neg,
        UnaryOp::Rsqrt,
        UnaryOp::Sqrt,
        UnaryOp::Recip,
        UnaryOp::Identity,
    ] {
        for (st, dims, flops) in [
            (F32, &[][..], 1u64),
            (F32, &[2][..], 2),
            (F32, &[4][..], 4),
            (F32, &[8][..], 8),
            (F32, &[16][..], 16),
            (F32, &[32][..], 32),
            (F32, &[64][..], 64),
            (F32, &[128][..], 128),
            (F16, &[][..], 1),
            (F16, &[2][..], 2),
            (F16, &[4][..], 4),
            (F16, &[8][..], 8),
            (F16, &[16][..], 16),
        ] {
            specs.push(AtomicSpec {
                name: "unary.pw",
                ptx: "unary pointwise op",
                kind: SpecKind::UnaryPointwise(op),
                exec_local: t1.clone(),
                ins: vec![pat(&[dims], st, Register).any_mem()],
                outs: vec![pat(&[dims], st, Register).any_mem()],
                semantics: AtomicSemantics::UnaryPerThread(op),
                cost: InstrCost { flops, tensor_core: false },
            });
        }
    }

    // --- Shfl / Init / per-thread reductions ------------------------------
    specs.push(AtomicSpec {
        name: "shfl.bfly.f32",
        ptx: "shfl.sync.bfly.b32",
        kind: SpecKind::Shfl { mask: 0 },
        exec_local: warp.clone(),
        ins: vec![pat(&[&[]], F32, Register)],
        outs: vec![pat(&[&[]], F32, Register)],
        semantics: AtomicSemantics::ShflBfly,
        cost: InstrCost::default(),
    });
    for st in [F32, F16] {
        specs.push(AtomicSpec {
            name: "init.rf",
            ptx: "mov immediate",
            kind: SpecKind::Init { value: 0.0 },
            exec_local: t1.clone(),
            ins: vec![],
            outs: vec![pat(&[&[]], st, Register).any_mem().any_shape()],
            semantics: AtomicSemantics::InitPerThread,
            cost: InstrCost::default(),
        });
    }
    for op in [ReduceOp::Sum, ReduceOp::Max] {
        for st in [F32, F16] {
            specs.push(AtomicSpec {
                name: "reduce.rf",
                ptx: "unrolled scalar reduction",
                kind: SpecKind::Reduction { op, axes: vec![0] },
                exec_local: t1.clone(),
                ins: vec![pat(&[&[]], st, Register).any_mem().any_shape()],
                outs: vec![pat(&[&[]], st, Register).any_mem()],
                semantics: AtomicSemantics::ReducePerThread(op),
                cost: InstrCost { flops: 8, tensor_core: false },
            });
        }
    }

    specs
}

/// Finds the first atomic spec of `arch` matching an undecomposed spec.
pub fn match_atomic<'a>(
    spec: &Spec,
    module: &Module,
    reg: &'a [AtomicSpec],
) -> Option<&'a AtomicSpec> {
    reg.iter().find(|a| a.matches(spec, module))
}

/// Fragment coordinate maps for collective tensor instructions.
///
/// These encode how values are distributed across a thread group's
/// registers — exactly the information Figure 1a/b visualises for
/// `ldmatrix`. Each function maps `(lane, value_index)` to the logical
/// `(row, col)` inside the collective tile. All maps are bijections
/// (property-tested).
pub mod fragments {
    /// `ldmatrix.x4` destination fragment: lane `l`, fp16 value `v`
    /// (0..8) → (row, col) in the 16×16 tile. The four 8×8 matrices are
    /// arranged 2×2 row-major (matrix `i` is supplied by lanes
    /// `8i..8i+8`); within a matrix, lane `l` receives elements
    /// `(l/4, 2*(l%4) + c)` of matrix `v/2`.
    pub fn ldmatrix_x4_dst(lane: usize, v: usize) -> (usize, usize) {
        debug_assert!(lane < 32 && v < 8);
        let mat = v / 2; // which 8x8 matrix this pair belongs to
        let c = v % 2;
        let (mrow, mcol) = (mat / 2, mat % 2);
        (mrow * 8 + lane / 4, mcol * 8 + 2 * (lane % 4) + c)
    }

    /// `ldmatrix.x4` source addressing: lane `l` supplies the address of
    /// row `l % 8` of matrix `l / 8` — returns (row, col-base) of the
    /// 8-element row in the 16×16 tile.
    pub fn ldmatrix_x4_src_row(lane: usize) -> (usize, usize) {
        debug_assert!(lane < 32);
        let mat = lane / 8;
        let (mrow, mcol) = (mat / 2, mat % 2);
        (mrow * 8 + lane % 8, mcol * 8)
    }

    /// Ampere `mma.m16n8k16` A-fragment (16×16 f16, row-major):
    /// lane `l`, value `v` (0..8) → (m, k).
    pub fn mma_16816_a(lane: usize, v: usize) -> (usize, usize) {
        debug_assert!(lane < 32 && v < 8);
        let row = lane / 4 + 8 * ((v / 2) % 2);
        let col = 2 * (lane % 4) + (v % 2) + 8 * (v / 4);
        (row, col)
    }

    /// Ampere `mma.m16n8k16` B-fragment (16×8 f16, K×N): lane `l`,
    /// value `v` (0..4) → (k, n).
    pub fn mma_16816_b(lane: usize, v: usize) -> (usize, usize) {
        debug_assert!(lane < 32 && v < 4);
        let k = 2 * (lane % 4) + (v % 2) + 8 * (v / 2);
        let n = lane / 4;
        (k, n)
    }

    /// Ampere `mma.m16n8k16` C/D-fragment (16×8 f32): lane `l`,
    /// value `v` (0..4) → (m, n).
    pub fn mma_16816_c(lane: usize, v: usize) -> (usize, usize) {
        debug_assert!(lane < 32 && v < 4);
        (lane / 4 + 8 * (v / 2), 2 * (lane % 4) + (v % 2))
    }

    /// Volta quad-pair `mma.m8n8k4` A-fragment (8×4 f16): quad-pair-local
    /// thread `t` (0..8), value `v` (0..4) → (m, k).
    ///
    /// This is a documented simplification of Volta's actual fragment
    /// interleaving (see DESIGN.md): shapes, thread counts, and the
    /// quad-pair execution model match the hardware; the exact
    /// value-to-lane assignment inside the fragment is normalised.
    pub fn mma_884_a(t: usize, v: usize) -> (usize, usize) {
        debug_assert!(t < 8 && v < 4);
        (4 * (t / 4) + v, t % 4)
    }

    /// Volta `mma.m8n8k4` B-fragment (4×8 f16): thread `t`, value `v`
    /// → (k, n).
    pub fn mma_884_b(t: usize, v: usize) -> (usize, usize) {
        debug_assert!(t < 8 && v < 4);
        (t % 4, 4 * (t / 4) + v)
    }

    /// Volta `mma.m8n8k4` C-fragment (8×8 f32): thread `t`, value `v`
    /// (0..8, as a `[2,4]` tile) → (m, n).
    pub fn mma_884_c(t: usize, v: usize) -> (usize, usize) {
        debug_assert!(t < 8 && v < 8);
        // v enumerates the row-major [2,4] register tile in the
        // colexicographic order of view enumeration: row varies fastest.
        (2 * (t % 4) + v % 2, 4 * (t / 4) + v / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threads::{ThreadLevel, ThreadTensor};
    use std::collections::HashSet;

    #[test]
    fn registry_differs_per_arch() {
        let volta = registry(Arch::Sm70);
        let ampere = registry(Arch::Sm86);
        assert!(volta.iter().any(|s| s.name == "mma.m8n8k4"));
        assert!(!volta.iter().any(|s| s.name.starts_with("ldmatrix")));
        assert!(ampere.iter().any(|s| s.name == "mma.m16n8k16"));
        assert!(ampere.iter().any(|s| s.name == "ldmatrix.x4"));
        assert!(!ampere.iter().any(|s| s.name == "mma.m8n8k4"));
    }

    #[test]
    fn table2_row1_scalar_global_load() {
        // Move, [1].thread, [].fp32.GL -> [].fp32.RF => ld.global.u32
        let mut m = Module::new();
        let src = m.declare_tensor(
            "g",
            TensorType::scalar(Layout::contiguous(1), ScalarType::F32),
            MemSpace::Global,
        );
        let dst = m.declare_tensor(
            "r",
            TensorType::scalar(Layout::contiguous(1), ScalarType::F32),
            MemSpace::Register,
        );
        let threads = ThreadTensor::new("t", ThreadLevel::Thread, &[256]);
        let t = m.declare_threads(threads.scalar("ts"));
        let spec = Spec::atomic(SpecKind::Move, vec![t], vec![src], vec![dst]);
        let reg = registry(Arch::Sm86);
        let found = match_atomic(&spec, &m, &reg).expect("should match");
        assert_eq!(found.ptx, "ld.global.u32");
    }

    #[test]
    fn table2_row2_vectorized_load() {
        // Move, [1].thread, [8].fp16.GL -> [8].fp16.RF => ld.global.v4.u32
        let mut m = Module::new();
        let src = m.declare_tensor(
            "g",
            TensorType::scalar(Layout::contiguous(8), ScalarType::F16),
            MemSpace::Global,
        );
        let dst = m.declare_tensor(
            "r",
            TensorType::scalar(Layout::contiguous(8), ScalarType::F16),
            MemSpace::Register,
        );
        let t = m.declare_threads(ThreadTensor::new("t", ThreadLevel::Thread, &[256]).scalar("ts"));
        let spec = Spec::atomic(SpecKind::Move, vec![t], vec![src], vec![dst]);
        let reg = registry(Arch::Sm86);
        assert_eq!(match_atomic(&spec, &m, &reg).unwrap().ptx, "ld.global.v4.u32");
    }

    #[test]
    fn vectorized_load_requires_contiguous_source() {
        // A strided [8:2] global source must NOT match the vectorised load.
        let mut m = Module::new();
        let src = m.declare_tensor(
            "g",
            TensorType::scalar(Layout::strided(8, 2), ScalarType::F16),
            MemSpace::Global,
        );
        let dst = m.declare_tensor(
            "r",
            TensorType::scalar(Layout::contiguous(8), ScalarType::F16),
            MemSpace::Register,
        );
        let t = m.declare_threads(ThreadTensor::new("t", ThreadLevel::Thread, &[256]).scalar("ts"));
        let spec = Spec::atomic(SpecKind::Move, vec![t], vec![src], vec![dst]);
        let reg = registry(Arch::Sm86);
        assert!(match_atomic(&spec, &m, &reg).is_none());
    }

    #[test]
    fn ldmatrix_matches_warp_exec_only() {
        let mut m = Module::new();
        let src = m.declare_tensor(
            "s",
            TensorType::row_major(&[1, 8], ScalarType::F16),
            MemSpace::Shared,
        );
        // dst per-thread: [2,2].[1,2].fp16.RF (Table 2 row 4).
        let inner = TensorType::row_major(&[1, 2], ScalarType::F16);
        let dst_ty = TensorType {
            layout: Layout::new(it![2, 2], it![2, 4]),
            elem: crate::tensor::Elem::Tile(Box::new(inner)),
            swizzle: Default::default(),
        };
        let dst = m.declare_tensor("d", dst_ty, MemSpace::Register);
        let warp = m.declare_threads(ThreadTensor::new("w", ThreadLevel::Thread, &[32]));
        let spec = Spec::atomic(SpecKind::Move, vec![warp], vec![src], vec![dst]);
        let reg = registry(Arch::Sm86);
        let found = match_atomic(&spec, &m, &reg).expect("ldmatrix should match");
        assert_eq!(found.name, "ldmatrix.x4");
        // On Volta the same spec must NOT match (no ldmatrix).
        let reg70 = registry(Arch::Sm70);
        assert!(match_atomic(&spec, &m, &reg70).is_none());
    }

    #[test]
    fn quad_pair_mma_matches_on_volta() {
        let mut m = Module::new();
        let a = m.declare_tensor(
            "a",
            TensorType::row_major(&[4, 1], ScalarType::F16),
            MemSpace::Register,
        );
        let b = m.declare_tensor(
            "b",
            TensorType::row_major(&[1, 4], ScalarType::F16),
            MemSpace::Register,
        );
        let c = m.declare_tensor(
            "c",
            TensorType::row_major(&[2, 4], ScalarType::F32),
            MemSpace::Register,
        );
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let qp = warp.tile("qp", &quad_pair_layout()).unwrap();
        let qp_id = m.declare_threads(qp);
        let spec = Spec::atomic(SpecKind::MatMul, vec![qp_id], vec![a, b], vec![c]);
        let reg = registry(Arch::Sm70);
        let found = match_atomic(&spec, &m, &reg).expect("quad-pair mma");
        assert_eq!(found.ptx, "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32");
        assert_eq!(found.cost.flops, 512);
        assert!(found.cost.tensor_core);
        // Wrong thread arrangement (contiguous groups of 8) must not match.
        let wrong = m.declare_threads(
            ThreadTensor::new("w2", ThreadLevel::Thread, &[32])
                .tile("g8", &Layout::contiguous(8))
                .unwrap(),
        );
        let spec2 = Spec::atomic(SpecKind::MatMul, vec![wrong], vec![a, b], vec![c]);
        assert!(match_atomic(&spec2, &m, &reg).is_none());
    }

    #[test]
    fn hfma_matches_scalar_matmul() {
        let mut m = Module::new();
        let mk = |m: &mut Module, n: &str, st| {
            m.declare_tensor(n, TensorType::scalar(Layout::contiguous(1), st), MemSpace::Register)
        };
        let a = mk(&mut m, "a", ScalarType::F16);
        let b = mk(&mut m, "b", ScalarType::F16);
        let c = mk(&mut m, "c", ScalarType::F16);
        let t = m.declare_threads(ThreadTensor::new("t", ThreadLevel::Thread, &[256]).scalar("ts"));
        let spec = Spec::atomic(SpecKind::MatMul, vec![t], vec![a, b], vec![c]);
        for arch in [Arch::Sm70, Arch::Sm86] {
            let reg = registry(arch);
            assert_eq!(match_atomic(&spec, &m, &reg).unwrap().name, "hfma");
        }
    }

    #[test]
    fn fragment_maps_are_bijections() {
        let mut seen = HashSet::new();
        for lane in 0..32 {
            for v in 0..8 {
                let (r, c) = fragments::ldmatrix_x4_dst(lane, v);
                assert!(r < 16 && c < 16);
                assert!(seen.insert((r, c)), "ldmatrix dup at ({r},{c})");
            }
        }
        assert_eq!(seen.len(), 256);

        let mut seen = HashSet::new();
        for lane in 0..32 {
            for v in 0..8 {
                let (m_, k) = fragments::mma_16816_a(lane, v);
                assert!(m_ < 16 && k < 16);
                assert!(seen.insert((m_, k)));
            }
        }
        assert_eq!(seen.len(), 256);

        let mut seen = HashSet::new();
        for lane in 0..32 {
            for v in 0..4 {
                let (k, n) = fragments::mma_16816_b(lane, v);
                assert!(k < 16 && n < 8);
                assert!(seen.insert((k, n)));
            }
        }
        assert_eq!(seen.len(), 128);

        let mut seen = HashSet::new();
        for lane in 0..32 {
            for v in 0..4 {
                let (m_, n) = fragments::mma_16816_c(lane, v);
                assert!(m_ < 16 && n < 8);
                assert!(seen.insert((m_, n)));
            }
        }
        assert_eq!(seen.len(), 128);

        for (f, rows, cols, vals) in [
            (fragments::mma_884_a as fn(usize, usize) -> (usize, usize), 8, 4, 4),
            (fragments::mma_884_b, 4, 8, 4),
            (fragments::mma_884_c, 8, 8, 8),
        ] {
            let mut seen = HashSet::new();
            for t in 0..8 {
                for v in 0..vals {
                    let (r, c) = f(t, v);
                    assert!(r < rows && c < cols);
                    assert!(seen.insert((r, c)));
                }
            }
            assert_eq!(seen.len(), rows * cols);
        }
    }

    #[test]
    fn ldmatrix_source_rows_cover_tile() {
        // Every row of each 8x8 matrix is supplied by exactly one lane.
        let mut seen = HashSet::new();
        for lane in 0..32 {
            let (row, col_base) = fragments::ldmatrix_x4_src_row(lane);
            assert!(row < 16 && (col_base == 0 || col_base == 8));
            assert!(seen.insert((row, col_base)));
        }
        assert_eq!(seen.len(), 32);
    }
}
