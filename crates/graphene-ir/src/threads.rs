//! Logical thread groups: the GPU compute hierarchy as tensors.
//!
//! The paper's §4 represents threads exactly like data: a warp is a
//! one-dimensional tensor of 32 threads which can be tiled and reshaped
//! into *logical thread groups* (e.g. 2×2 groups of 8 for `ldmatrix`,
//! Figure 5, or Volta's non-contiguous quad-pairs `[(4,2):(1,16)]`,
//! Figure 6). The scalar type of a thread tensor is `thread` or `block`,
//! echoing CUDA's two built-in hierarchies.
//!
//! A thread tensor holds two layouts over *linear hardware ids*
//! (`threadIdx.x` / `blockIdx.x`):
//!
//! - `group`: arrangement of logical groups → id of the group's base,
//! - `local`: threads within one group → id offset within the group.
//!
//! Index expressions (the `thr_grp_m = (threadIdx.x / 16) % 2` scalar
//! computations of Figure 5) are derived automatically per leaf mode as
//! `(id / stride) % size`.

use graphene_layout::{composition, logical_divide, IntTuple, Layout, LayoutError};
use graphene_sym::{simplify, IntExpr};
use std::fmt;

/// Which CUDA hierarchy a thread tensor ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadLevel {
    /// Threads within a thread-block (`threadIdx.x`).
    Thread,
    /// Thread-blocks within the grid (`blockIdx.x`).
    Block,
}

impl ThreadLevel {
    /// The scalar-type name in Graphene notation.
    pub fn graphene_name(self) -> &'static str {
        match self {
            ThreadLevel::Thread => "thread",
            ThreadLevel::Block => "block",
        }
    }

    /// The CUDA builtin variable holding the linear hardware id.
    pub fn cuda_var(self) -> &'static str {
        match self {
            ThreadLevel::Thread => "threadIdx.x",
            ThreadLevel::Block => "blockIdx.x",
        }
    }
}

impl fmt::Display for ThreadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.graphene_name())
    }
}

/// Identifier of a thread tensor within an IR module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "th{}", self.0)
    }
}

/// A (possibly tiled/reshaped) tensor of threads or blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTensor {
    /// Name without the `#` sigil.
    pub name: String,
    /// `thread` or `block`.
    pub level: ThreadLevel,
    /// Logical groups → base hardware id. Trivial (`[1:0]`) for untiled
    /// tensors.
    pub group: Layout,
    /// Threads within one group → hardware id offset.
    pub local: Layout,
}

impl ThreadTensor {
    /// A fresh, untiled thread tensor over `dims` with the paper's
    /// row-major linearisation (rightmost dimension varies fastest, as in
    /// Figure 8's generated `bid_m = (blockIdx.x / 8) % 8`).
    pub fn new(name: impl Into<String>, level: ThreadLevel, dims: &[i64]) -> Self {
        ThreadTensor {
            name: name.into(),
            level,
            group: Layout::new(IntTuple::Int(1), IntTuple::Int(0)),
            local: Layout::row_major(dims),
        }
    }

    /// Total number of hardware threads (or blocks) covered.
    pub fn count(&self) -> i64 {
        self.group.size() * self.local.size()
    }

    /// Number of logical groups.
    pub fn num_groups(&self) -> i64 {
        self.group.size()
    }

    /// Number of threads within one group.
    pub fn group_size(&self) -> i64 {
        self.local.size()
    }

    /// Tiles the threads of this tensor by a 1-D tiler layout — the thread
    /// analogue of data tiling (paper Figure 5b, Figure 6).
    ///
    /// The tiler selects which local threads form one group (contiguous
    /// `[8:1]`, or non-contiguous like the quad-pair tiler
    /// `[(4,2):(1,16)]`); the remaining structure becomes the new group
    /// arrangement.
    ///
    /// ```
    /// use graphene_ir::threads::{ThreadLevel, ThreadTensor};
    /// use graphene_layout::Layout;
    ///
    /// // Figure 5b: a warp tiled into four groups of eight.
    /// let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
    /// let tiled = warp.tile("t", &Layout::contiguous(8))?;
    /// assert_eq!(tiled.num_groups(), 4);
    /// assert_eq!(tiled.group_size(), 8);
    /// # Ok::<(), graphene_layout::LayoutError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Errors if the tiler does not divide the local thread layout.
    pub fn tile(&self, name: impl Into<String>, tiler: &Layout) -> Result<Self, LayoutError> {
        let divided = logical_divide(&self.local, tiler)?;
        let tile = divided.mode(0);
        let rest = divided.mode(1);
        // New groups = old groups × rest (rest varies fastest).
        let group = if self.group.size() == 1 {
            rest
        } else {
            Layout::from_modes(&[rest, self.group.clone()])
        };
        Ok(ThreadTensor { name: name.into(), level: self.level, group, local: tile })
    }

    /// Reshapes the *group* arrangement (depth 0) to new dimensions using
    /// the paper's row-major convention (Figure 5c: 4 groups → 2×2).
    ///
    /// # Errors
    ///
    /// Errors if the new shape's size differs from the group count or the
    /// composition is inadmissible.
    pub fn reshape_groups(
        &self,
        name: impl Into<String>,
        dims: &[i64],
    ) -> Result<Self, LayoutError> {
        let connector = Layout::row_major(dims);
        if connector.size() != self.group.size() {
            return Err(LayoutError::Incompatible(format!(
                "cannot reshape {} groups into {:?}",
                self.group.size(),
                dims
            )));
        }
        let group = composition(&self.group, &connector)?;
        Ok(ThreadTensor { name: name.into(), level: self.level, group, local: self.local.clone() })
    }

    /// `#t.scalar()` — the per-thread singleton view (paper Figure 8,
    /// lines 32-33: `#22:[].thread = #5.scalar()`): every thread becomes
    /// its own group of size 1, so specs executed with it are per-thread.
    pub fn scalar(&self, name: impl Into<String>) -> Self {
        let group = if self.group.size() == 1 {
            self.local.clone()
        } else {
            Layout::from_modes(&[self.local.clone(), self.group.clone()])
        };
        ThreadTensor {
            name: name.into(),
            level: self.level,
            group,
            local: Layout::new(IntTuple::Int(1), IntTuple::Int(0)),
        }
    }

    /// The symbolic hardware-id variable (`threadIdx.x` / `blockIdx.x`)
    /// bounded by this tensor's total count.
    pub fn hw_var(&self) -> IntExpr {
        IntExpr::var_bounded(self.level.cuda_var(), self.count())
    }

    /// Per-top-level-mode *group* coordinates as simplified index
    /// expressions over the hardware id (Figure 5's `thr_grp_m/n`,
    /// Figure 8's `bid_m/bid_n` and `tid_m/tid_n`).
    ///
    /// For an untiled tensor this returns the coordinates within `local`
    /// (its only structure); for a tiled tensor, the coordinates of the
    /// thread's group.
    pub fn group_coords(&self) -> Vec<IntExpr> {
        let layout = if self.group.size() == 1 { &self.local } else { &self.group };
        let id = self.hw_var();
        (0..layout.rank())
            .map(|i| {
                let mode = layout.mode(i);
                simplify(&mode_coord(&id, &mode))
            })
            .collect()
    }

    /// The thread's linear coordinate *within its group*, as a simplified
    /// expression (Figure 5's `grp_local_idx = threadIdx.x % 8`).
    pub fn local_coord(&self) -> IntExpr {
        let id = self.hw_var();
        simplify(&mode_coord(&id, &self.local))
    }

    /// Renders the tensor in the paper's notation, e.g.
    /// `#warp:[(2,2):(16,8)].[8:1].thread`.
    pub fn render(&self) -> String {
        if self.group.size() == 1 {
            format!("#{}:{}.{}", self.name, self.local, self.level)
        } else {
            format!("#{}:{}.{}.{}", self.name, self.group, self.local, self.level)
        }
    }
}

/// Recovers the linear coordinate within a mode from a hardware id:
/// for each leaf `(size, stride)` the digit is `(id / stride) % size`,
/// digits combine colexicographically.
///
/// Sound when the mode's leaves address disjoint "digit spans" of the id,
/// which holds for all tilings produced by [`logical_divide`] of compact
/// thread layouts (validated in tests).
fn mode_coord(id: &IntExpr, mode: &Layout) -> IntExpr {
    let shapes = mode.shape().leaves();
    let strides = mode.stride().leaves();
    let mut acc = IntExpr::zero();
    let mut mult = 1i64;
    for (&s, &d) in shapes.iter().zip(&strides) {
        if s == 1 {
            continue;
        }
        let digit = if d == 0 { IntExpr::zero() } else { (id.clone() / d) % s };
        acc = acc + digit * mult;
        mult *= s;
    }
    acc
}

impl fmt::Display for ThreadTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_layout::it;
    use std::collections::HashMap;

    fn eval(e: &IntExpr, var: &str, v: i64) -> i64 {
        let env: HashMap<String, i64> = [(var.to_string(), v)].into();
        e.eval(&env).unwrap()
    }

    #[test]
    fn fresh_warp() {
        let w = ThreadTensor::new("1", ThreadLevel::Thread, &[32]);
        assert_eq!(w.count(), 32);
        assert_eq!(w.num_groups(), 1);
        assert_eq!(w.render(), "#1:[32:1].thread");
    }

    #[test]
    fn ldmatrix_thread_arrangement_figure5() {
        // Figure 5: warp [32] -> tile([8]) -> 4 groups of 8
        //           -> reshape depth-0 to (2,2).
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let tiled = warp.tile("t", &Layout::contiguous(8)).unwrap();
        assert_eq!(tiled.num_groups(), 4);
        assert_eq!(tiled.group_size(), 8);
        let grouped = tiled.reshape_groups("g", &[2, 2]).unwrap();
        assert_eq!(grouped.num_groups(), 4);

        // Paper's scalar index expressions (Figure 5c / Figure 1c):
        //   thr_grp_m = (threadIdx.x / 16) % 2
        //   thr_grp_n = (threadIdx.x / 8) % 2
        //   grp_local_idx = threadIdx.x % 8
        let coords = grouped.group_coords();
        assert_eq!(coords.len(), 2);
        // (threadIdx.x / 16) % 2 simplifies to threadIdx.x / 16 because
        // threadIdx.x < 32 implies the quotient is already < 2.
        assert_eq!(coords[0].to_string(), "threadIdx.x / 16");
        assert_eq!(coords[1].to_string(), "threadIdx.x / 8 % 2");
        assert_eq!(grouped.local_coord().to_string(), "threadIdx.x % 8");
    }

    #[test]
    fn quad_pairs_figure6() {
        // Volta quad-pairs: tile the warp with [(4,2):(1,16)].
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let qp = warp.tile("qp", &Layout::new(it![4, 2], it![1, 16])).unwrap();
        assert_eq!(qp.num_groups(), 4);
        assert_eq!(qp.group_size(), 8);
        // Quad-pair 0 = threads 0-3 and 16-19: thread 17 is in group 0 at
        // local position 5 (second quad, lane 1).
        let g = qp.group_coords();
        assert_eq!(g.len(), 1);
        for t in 0..32 {
            let group = eval(&g[0], "threadIdx.x", t);
            let expected = (t % 16) / 4;
            assert_eq!(group, expected, "thread {t}");
        }
        let local = qp.local_coord();
        assert_eq!(eval(&local, "threadIdx.x", 17), 5);
        assert_eq!(eval(&local, "threadIdx.x", 3), 3);
        assert_eq!(eval(&local, "threadIdx.x", 16), 4);
    }

    #[test]
    fn group_coords_partition_the_warp() {
        // Every thread belongs to exactly one (group, local) pair and the
        // map (group, local) -> thread id is a bijection.
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        for tiler in
            [Layout::contiguous(8), Layout::strided(8, 4), Layout::new(it![4, 2], it![1, 16])]
        {
            let tt = warp.tile("t", &tiler).unwrap();
            let g = &tt.group_coords()[0];
            let l = tt.local_coord();
            let mut seen = std::collections::HashSet::new();
            for t in 0..32 {
                let pair = (eval(g, "threadIdx.x", t), eval(&l, "threadIdx.x", t));
                assert!(pair.0 < tt.num_groups() && pair.1 < tt.group_size());
                assert!(seen.insert(pair), "duplicate (group, local) for tiler {tiler}");
            }
        }
    }

    #[test]
    fn block_tensor_figure8() {
        // Figure 8: #4:[8,8].block with
        //   bid_m = (blockIdx.x / 8) % 8 ; bid_n = blockIdx.x % 8
        let blocks = ThreadTensor::new("4", ThreadLevel::Block, &[8, 8]);
        let coords = blocks.group_coords();
        // (blockIdx.x / 8) % 8 simplifies: blockIdx.x < 64.
        assert_eq!(coords[0].to_string(), "blockIdx.x / 8");
        assert_eq!(coords[1].to_string(), "blockIdx.x % 8");
        assert_eq!(blocks.count(), 64);
    }

    #[test]
    fn thread_tensor_16x16_figure8() {
        let threads = ThreadTensor::new("5", ThreadLevel::Thread, &[16, 16]);
        let coords = threads.group_coords();
        // threadIdx.x < 256 so the / 16 quotient needs no % 16.
        assert_eq!(coords[0].to_string(), "threadIdx.x / 16");
        assert_eq!(coords[1].to_string(), "threadIdx.x % 16");
    }

    #[test]
    fn reshape_size_mismatch_errors() {
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let tiled = warp.tile("t", &Layout::contiguous(8)).unwrap();
        assert!(tiled.reshape_groups("g", &[3, 2]).is_err());
    }

    #[test]
    fn display_tiled() {
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let tiled = warp.tile("t", &Layout::contiguous(8)).unwrap();
        assert_eq!(tiled.render(), "#t:[4:8].[8:1].thread");
    }
}
