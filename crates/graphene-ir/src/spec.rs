//! Specifications: Graphene's abstraction for collective computations.
//!
//! A *spec* (paper §5, Figure 7) encapsulates a self-contained block of
//! computation or data movement: it names its input and output tensors
//! and an *execution configuration* — the thread tensors available to
//! execute it, written `Spec <<<#ts, ...>>> (ins) -> (outs)`. A spec may
//! carry a *decomposition* describing its implementation with control
//! flow and nested specs; a spec without decomposition must match one of
//! the architecture's *atomic specs* (Table 2), which lower directly to
//! GPU instructions.

use crate::body::Body;
use crate::ops::{BinaryOp, ReduceOp, UnaryOp};
use crate::tensor::TensorId;
use crate::threads::ThreadId;
use std::fmt;

/// The built-in spec kinds of Table 1, plus the generic spec used for
/// fused kernels (§5.3).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecKind {
    /// Data movement between memory levels.
    Move,
    /// Matrix-multiply-accumulate: `C += A × B`.
    MatMul,
    /// Elementwise unary computation.
    UnaryPointwise(UnaryOp),
    /// Elementwise binary computation.
    BinaryPointwise(BinaryOp),
    /// Reduce a tensor along one or more axes.
    Reduction {
        /// The combining operation.
        op: ReduceOp,
        /// Axes of the input tensor being reduced away.
        axes: Vec<usize>,
    },
    /// Exchange tensor values within thread groups (maps to
    /// `shfl.sync`). The field is the butterfly XOR mask.
    Shfl {
        /// XOR lane mask for the butterfly exchange.
        mask: u32,
    },
    /// Uniformly assign a scalar value to a tensor.
    Init {
        /// The value assigned to every element.
        value: f64,
    },
    /// A generic fused computation, defined entirely by its
    /// decomposition.
    Generic(String),
}

impl SpecKind {
    /// Short display name as used in listings.
    pub fn name(&self) -> String {
        match self {
            SpecKind::Move => "Move".into(),
            SpecKind::MatMul => "MatMul".into(),
            SpecKind::UnaryPointwise(op) => format!("UnaryPW<{op}>"),
            SpecKind::BinaryPointwise(op) => format!("BinaryPW<{op}>"),
            SpecKind::Reduction { op, .. } => format!("Reduction<{op}>"),
            SpecKind::Shfl { .. } => "Shfl".into(),
            SpecKind::Init { .. } => "Init".into(),
            SpecKind::Generic(name) => format!("Spec[{name}]"),
        }
    }

    /// True when two kinds describe the same operation family (used by
    /// atomic-spec matching; reduction axes and init values are
    /// parameters, not part of the family).
    pub fn same_family(&self, other: &SpecKind) -> bool {
        match (self, other) {
            (SpecKind::Move, SpecKind::Move)
            | (SpecKind::MatMul, SpecKind::MatMul)
            | (SpecKind::Init { .. }, SpecKind::Init { .. })
            | (SpecKind::Shfl { .. }, SpecKind::Shfl { .. }) => true,
            (SpecKind::UnaryPointwise(a), SpecKind::UnaryPointwise(b)) => a == b,
            (SpecKind::BinaryPointwise(a), SpecKind::BinaryPointwise(b)) => a == b,
            (SpecKind::Reduction { op: a, .. }, SpecKind::Reduction { op: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for SpecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A specification instance in the IR.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// What this spec computes.
    pub kind: SpecKind,
    /// Execution configuration: the thread tensors executing this spec,
    /// outermost first (e.g. `<<<#blocks, #threads>>>`).
    pub exec: Vec<ThreadId>,
    /// Input tensors.
    pub ins: Vec<TensorId>,
    /// Output tensors.
    pub outs: Vec<TensorId>,
    /// Optional decomposition (paper Figure 7's `{ Decomposition }`).
    /// `None` means the spec must match an atomic spec at code
    /// generation time.
    pub body: Option<Body>,
}

impl Spec {
    /// Creates an undecomposed spec.
    pub fn atomic(
        kind: SpecKind,
        exec: Vec<ThreadId>,
        ins: Vec<TensorId>,
        outs: Vec<TensorId>,
    ) -> Self {
        Spec { kind, exec, ins, outs, body: None }
    }

    /// Creates a spec with a decomposition.
    pub fn decomposed(
        kind: SpecKind,
        exec: Vec<ThreadId>,
        ins: Vec<TensorId>,
        outs: Vec<TensorId>,
        body: Body,
    ) -> Self {
        Spec { kind, exec, ins, outs, body: Some(body) }
    }

    /// True if the spec carries no decomposition.
    pub fn is_undecomposed(&self) -> bool {
        self.body.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(SpecKind::Move.name(), "Move");
        assert_eq!(SpecKind::MatMul.name(), "MatMul");
        assert_eq!(SpecKind::UnaryPointwise(UnaryOp::Relu).name(), "UnaryPW<relu>");
        assert_eq!(SpecKind::BinaryPointwise(BinaryOp::Add).name(), "BinaryPW<+>");
        assert_eq!(
            SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![1] }.name(),
            "Reduction<sum>"
        );
        assert_eq!(SpecKind::Generic("FMHA".into()).name(), "Spec[FMHA]");
    }

    #[test]
    fn family_matching() {
        let r1 = SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] };
        let r2 = SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![1] };
        let r3 = SpecKind::Reduction { op: ReduceOp::Max, axes: vec![1] };
        assert!(r1.same_family(&r2));
        assert!(!r1.same_family(&r3));
        assert!(SpecKind::Init { value: 0.0 }.same_family(&SpecKind::Init { value: 1.0 }));
        assert!(!SpecKind::Move.same_family(&SpecKind::MatMul));
    }

    #[test]
    fn atomic_construction() {
        let s =
            Spec::atomic(SpecKind::Move, vec![ThreadId(0)], vec![TensorId(1)], vec![TensorId(2)]);
        assert!(s.is_undecomposed());
    }
}
