//! Golden tests for the IR printer: the rendered listings must follow
//! the paper's notation (Figures 1d and 8).

use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::ScalarType;
use graphene_layout::Layout;
use graphene_sym::IntExpr;

#[test]
fn figure1d_style_listing() {
    let mut kb = KernelBuilder::new("mv", &[1], &[32]);
    let block = kb.block();
    let smem = kb.alloc_shared("1", TensorType::row_major(&[16, 16], ScalarType::F16));
    let regs = kb.alloc_reg("2", TensorType::row_major(&[2, 4], ScalarType::F32));
    kb.spec_decomposed(SpecKind::Move, vec![block], vec![smem], vec![regs], |kb| {
        let warp = kb.block();
        let grp8 = kb.thread_tile(warp, &Layout::contiguous(8)).unwrap();
        let grps = kb.thread_reshape(grp8, &[2, 2]).unwrap();
        let g = kb.module()[grps].group_coords();
        let tiles = kb.tile_c(smem, &[Some(8), Some(8)]).unwrap();
        let _sel = kb.index(tiles, &[g[0].clone(), g[1].clone()]);
        kb.comment("inner ldmatrix move would follow");
    });
    let kernel = kb.build();
    let listing = kernel.to_string();

    // Declarations in the paper's notation.
    assert!(listing.contains("%1:[(16,16):(16,1)].fp16.SH"), "{listing}");
    assert!(listing.contains("%2:[(2,4):(4,1)].fp32.RF"), "{listing}");
    assert!(listing.contains("#threads:[32:1].thread"), "{listing}");
    // The spec header with execution config.
    assert!(listing.contains("Move <<<#threads>>> (%1) -> (%2) {"), "{listing}");
    // Thread tiling statements.
    assert!(listing.contains(".tile([[8:1]])"), "{listing}");
    assert!(listing.contains(".reshape(0, [2, 2])"), "{listing}");
    // Data tiling: 8x8 tiles of the 16x16 tensor.
    assert!(listing.contains(".tile([[8:1], [8:1]])"), "{listing}");
    // Tile selection by logical thread-group coordinates.
    assert!(listing.contains("[threadIdx.x / 16, threadIdx.x / 8 % 2]"), "{listing}");
}

#[test]
fn figure8_style_listing() {
    let mut kb = KernelBuilder::new("gemm", &[8, 8], &[16, 16]);
    let a = kb.param("1", &[1024, 1024], ScalarType::F16);
    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let a_blk = kb.tile_c(a, &[Some(128), None]).unwrap();
    let a_v = kb.index(a_blk, &[bids[0].clone(), IntExpr::zero()]);
    kb.for_loop("k", 1024, true, |kb, k| {
        let _elem = kb.index(a_v, &[k.clone(), k.clone()]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![a_v]);
    });
    let kernel = kb.build();
    let listing = kernel.to_string();

    assert!(listing.contains("%1:[(1024,1024):(1024,1)].fp16.GL"), "{listing}");
    assert!(listing.contains("#grid:[(8,8):(8,1)].block"), "{listing}");
    // The `_` wildcard tile dimension renders as in the paper.
    assert!(listing.contains(".tile([[128:1], _])"), "{listing}");
    // Loops render with the unroll marker.
    assert!(listing.contains("for (k = 0; k < 1024; k += 1) /*unroll*/ {"), "{listing}");
    // Init spec header with grid + per-thread exec config.
    assert!(listing.contains("Init <<<#grid, #t"), "{listing}");
}

#[test]
fn thread_tensor_notation_matches_paper() {
    use graphene_ir::threads::{ThreadLevel, ThreadTensor};
    // Figure 5: #1:[32].thread -> tile([8]) -> reshape -> 2x2 groups.
    let warp = ThreadTensor::new("1", ThreadLevel::Thread, &[32]);
    assert_eq!(warp.render(), "#1:[32:1].thread");
    let t = warp.tile("2", &Layout::contiguous(8)).unwrap();
    assert_eq!(t.render(), "#2:[4:8].[8:1].thread");
    let r = t.reshape_groups("3", &[2, 2]).unwrap();
    assert_eq!(r.render(), "#3:[(2,2):(16,8)].[8:1].thread");
    // Figure 6 quad-pairs.
    let qp = warp.tile("qp", &graphene_ir::atomic::quad_pair_layout()).unwrap();
    assert_eq!(qp.render(), "#qp:[4:4].[(4,2):(1,16)].thread");
}
