//! Table 2 of the paper, row by row: every listed atomic specification
//! must match a spec with exactly the paper's thread arrangement and
//! operand types, and lower to the paper's instruction.

use graphene_ir::atomic::{match_atomic, quad_pair_layout, registry, Arch};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::{Spec, SpecKind};
use graphene_ir::tensor::{Elem, TensorType};
use graphene_ir::threads::{ThreadLevel, ThreadTensor};
use graphene_ir::{BinaryOp, MemSpace, Module, ScalarType};
use graphene_layout::{it, Layout, Swizzle};

fn scalar_ty(st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(1), st)
}

fn vec_ty(n: i64, st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(n), st)
}

fn tiled(
    outer_shape: graphene_layout::IntTuple,
    outer_stride: graphene_layout::IntTuple,
    inner_shape: graphene_layout::IntTuple,
    inner_stride: graphene_layout::IntTuple,
    st: ScalarType,
) -> TensorType {
    TensorType {
        layout: Layout::new(outer_shape, outer_stride),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(inner_shape, inner_stride),
            elem: Elem::Scalar(st),
            swizzle: Swizzle::identity(),
        })),
        swizzle: Swizzle::identity(),
    }
}

struct Ctx {
    module: Module,
}

impl Ctx {
    fn new() -> Self {
        Ctx { module: Module::new() }
    }

    fn tensor(&mut self, ty: TensorType, mem: MemSpace) -> graphene_ir::TensorId {
        self.module.declare_tensor(format!("t{}", self.module.num_tensors()), ty, mem)
    }

    fn per_thread(&mut self) -> graphene_ir::ThreadId {
        let tt = ThreadTensor::new("t", ThreadLevel::Thread, &[128]).scalar("ts");
        self.module.declare_threads(tt)
    }

    fn warp(&mut self) -> graphene_ir::ThreadId {
        self.module.declare_threads(ThreadTensor::new("w", ThreadLevel::Thread, &[32]))
    }

    fn quad_pairs(&mut self) -> graphene_ir::ThreadId {
        let tt = ThreadTensor::new("w", ThreadLevel::Thread, &[32])
            .tile("qp", &quad_pair_layout())
            .unwrap();
        self.module.declare_threads(tt)
    }

    fn expect(
        &self,
        arch: Arch,
        kind: SpecKind,
        exec: graphene_ir::ThreadId,
        ins: Vec<graphene_ir::TensorId>,
        outs: Vec<graphene_ir::TensorId>,
        want_ptx: &str,
    ) {
        let spec = Spec::atomic(kind, vec![exec], ins, outs);
        let reg = registry(arch);
        let found = match_atomic(&spec, &self.module, &reg)
            .unwrap_or_else(|| panic!("no atomic match for expected `{want_ptx}`"));
        assert_eq!(found.ptx, want_ptx);
    }
}

#[test]
fn row1_scalar_global_load() {
    // Move | [1].thread | [].fp32.GL | [].fp32.RF | ld.global.u32
    let mut c = Ctx::new();
    let src = c.tensor(scalar_ty(ScalarType::F32), MemSpace::Global);
    let dst = c.tensor(scalar_ty(ScalarType::F32), MemSpace::Register);
    let t = c.per_thread();
    c.expect(Arch::Sm86, SpecKind::Move, t, vec![src], vec![dst], "ld.global.u32");
}

#[test]
fn row2_vectorized_global_load() {
    // Move | [1].thread | [8].fp16.GL | [8].fp16.RF | ld.global.v4.u32
    let mut c = Ctx::new();
    let src = c.tensor(vec_ty(8, ScalarType::F16), MemSpace::Global);
    let dst = c.tensor(vec_ty(8, ScalarType::F16), MemSpace::Register);
    let t = c.per_thread();
    c.expect(Arch::Sm86, SpecKind::Move, t, vec![src], vec![dst], "ld.global.v4.u32");
}

#[test]
fn row3_vectorized_shared_store() {
    // Move | [1].thread | [4].fp32.RF | [4].fp32.SH | st.shared.v4.u32
    let mut c = Ctx::new();
    let src = c.tensor(vec_ty(4, ScalarType::F32), MemSpace::Register);
    let dst = c.tensor(vec_ty(4, ScalarType::F32), MemSpace::Shared);
    let t = c.per_thread();
    c.expect(Arch::Sm86, SpecKind::Move, t, vec![src], vec![dst], "st.shared.v4.u32");
}

#[test]
fn row4_ldmatrix() {
    // Move | [32].thread | [1,8].fp16.SH | [2,2].[1,2].fp16.RF | ldmatrix...x4
    let mut c = Ctx::new();
    let src = c.tensor(TensorType::row_major(&[1, 8], ScalarType::F16), MemSpace::Shared);
    let dst = c.tensor(
        tiled(it![2, 2], it![2, 4], it![1, 2], it![0, 1], ScalarType::F16),
        MemSpace::Register,
    );
    let w = c.warp();
    c.expect(
        Arch::Sm86,
        SpecKind::Move,
        w,
        vec![src],
        vec![dst],
        "ldmatrix.sync.aligned.m8n8.x4.shared.b16",
    );
}

#[test]
fn row5_hmul() {
    // BinaryPW<*> | [1].thread | [].fp16 x2 | [].fp16 | hmul
    let mut c = Ctx::new();
    let a = c.tensor(scalar_ty(ScalarType::F16), MemSpace::Register);
    let b = c.tensor(scalar_ty(ScalarType::F16), MemSpace::Register);
    let d = c.tensor(scalar_ty(ScalarType::F16), MemSpace::Register);
    let t = c.per_thread();
    c.expect(
        Arch::Sm86,
        SpecKind::BinaryPointwise(BinaryOp::Mul),
        t,
        vec![a, b],
        vec![d],
        "f16 pointwise op",
    );
}

#[test]
fn row6_hadd2() {
    // BinaryPW<+> | [1].thread | [2].fp16 x2 | [2].fp16 | hadd2
    let mut c = Ctx::new();
    let a = c.tensor(vec_ty(2, ScalarType::F16), MemSpace::Register);
    let b = c.tensor(vec_ty(2, ScalarType::F16), MemSpace::Register);
    let d = c.tensor(vec_ty(2, ScalarType::F16), MemSpace::Register);
    let t = c.per_thread();
    c.expect(
        Arch::Sm86,
        SpecKind::BinaryPointwise(BinaryOp::Add),
        t,
        vec![a, b],
        vec![d],
        "f16x2 pointwise op",
    );
}

#[test]
fn rows7_to_9_fma_family() {
    // hfma / hfma2 / fmaf
    for (st, n, want) in [
        (ScalarType::F16, 1i64, "fma.rn.f16"),
        (ScalarType::F16, 2, "fma.rn.f16x2"),
        (ScalarType::F32, 1, "fma.rn.f32"),
    ] {
        let mut c = Ctx::new();
        let a = c.tensor(vec_ty(n, st), MemSpace::Register);
        let b = c.tensor(vec_ty(n, st), MemSpace::Register);
        let d = c.tensor(vec_ty(n, st), MemSpace::Register);
        let t = c.per_thread();
        c.expect(Arch::Sm86, SpecKind::MatMul, t, vec![a, b], vec![d], want);
        c.expect(Arch::Sm70, SpecKind::MatMul, t, vec![a, b], vec![d], want);
    }
}

#[test]
fn row10_volta_quad_pair_mma() {
    // MatMul | [(4,2):(1,16)].thread | [4,1] x [1,4] fp16 | [2,4] fp32
    let mut c = Ctx::new();
    let a = c.tensor(TensorType::row_major(&[4, 1], ScalarType::F16), MemSpace::Register);
    let b = c.tensor(TensorType::row_major(&[1, 4], ScalarType::F16), MemSpace::Register);
    let d = c.tensor(TensorType::row_major(&[2, 4], ScalarType::F32), MemSpace::Register);
    let qp = c.quad_pairs();
    c.expect(
        Arch::Sm70,
        SpecKind::MatMul,
        qp,
        vec![a, b],
        vec![d],
        "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32",
    );
}

#[test]
fn row11_ampere_mma() {
    // MatMul | [32].thread | [2,2].[1,2] x [2,1].[2,1] fp16 | [2,1].[1,2] fp32
    let mut c = Ctx::new();
    let a = c.tensor(
        tiled(it![2, 2], it![2, 4], it![1, 2], it![0, 1], ScalarType::F16),
        MemSpace::Register,
    );
    let b = c.tensor(
        tiled(it![2, 1], it![2, 0], it![2, 1], it![1, 0], ScalarType::F16),
        MemSpace::Register,
    );
    let d = c.tensor(
        tiled(it![2, 1], it![2, 0], it![1, 2], it![0, 1], ScalarType::F32),
        MemSpace::Register,
    );
    let w = c.warp();
    c.expect(
        Arch::Sm86,
        SpecKind::MatMul,
        w,
        vec![a, b],
        vec![d],
        "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32",
    );
}

#[test]
fn wrong_thread_arrangement_rejected() {
    // The quad-pair mma must NOT match a contiguous 8-thread grouping.
    let mut c = Ctx::new();
    let a = c.tensor(TensorType::row_major(&[4, 1], ScalarType::F16), MemSpace::Register);
    let b = c.tensor(TensorType::row_major(&[1, 4], ScalarType::F16), MemSpace::Register);
    let d = c.tensor(TensorType::row_major(&[2, 4], ScalarType::F32), MemSpace::Register);
    let wrong = c.module.declare_threads(
        ThreadTensor::new("w", ThreadLevel::Thread, &[32])
            .tile("g", &Layout::contiguous(8))
            .unwrap(),
    );
    let spec = Spec::atomic(SpecKind::MatMul, vec![wrong], vec![a, b], vec![d]);
    assert!(match_atomic(&spec, &c.module, &registry(Arch::Sm70)).is_none());
}

#[test]
fn arch_separation() {
    // ldmatrix only on Ampere; quad-pair mma only on Volta.
    let sm70 = registry(Arch::Sm70);
    let sm86 = registry(Arch::Sm86);
    assert!(sm70.iter().all(|a| !a.name.starts_with("ldmatrix")));
    assert!(sm86.iter().all(|a| a.name != "mma.m8n8k4"));
    assert!(sm70.iter().any(|a| a.name == "mma.m8n8k4"));
    assert!(sm86.iter().any(|a| a.name == "mma.m16n8k16"));
}

#[test]
fn figure8_inner_matmul_matches_hfma_via_builder() {
    // The paper's Figure 8 MatMul on [].fp16.GL operands matches hfma.
    let mut kb = KernelBuilder::new("k", &[1], &[32]);
    let a = kb.param("a", &[8, 8], ScalarType::F16);
    let block = kb.block();
    let tid = kb.module()[block].group_coords()[0].clone();
    let ae = kb.index(a, &[tid.clone() / 8, tid % 8]);
    let ts = kb.thread_scalar(block);
    let spec = Spec::atomic(SpecKind::MatMul, vec![ts], vec![ae, ae], vec![ae]);
    let reg = registry(Arch::Sm86);
    let found = match_atomic(&spec, kb.module(), &reg).expect("hfma");
    assert_eq!(found.name, "hfma");
}

#[test]
fn bf16_tensor_cores_ampere_only() {
    // The bf16 mma exists on Ampere; Volta has no bf16 tensor cores.
    let mut c = Ctx::new();
    let a = c.tensor(
        tiled(it![2, 2], it![2, 4], it![1, 2], it![0, 1], ScalarType::BF16),
        MemSpace::Register,
    );
    let b = c.tensor(
        tiled(it![2, 1], it![2, 0], it![2, 1], it![1, 0], ScalarType::BF16),
        MemSpace::Register,
    );
    let d = c.tensor(
        tiled(it![2, 1], it![2, 0], it![1, 2], it![0, 1], ScalarType::F32),
        MemSpace::Register,
    );
    let w = c.warp();
    c.expect(
        Arch::Sm86,
        SpecKind::MatMul,
        w,
        vec![a, b],
        vec![d],
        "mma.sync.aligned.m16n8k16.row.col.f32.bf16.bf16.f32",
    );
    let spec = Spec::atomic(SpecKind::MatMul, vec![w], vec![a, b], vec![d]);
    assert!(match_atomic(&spec, &c.module, &registry(Arch::Sm70)).is_none());
}

#[test]
fn bf16_moves_match() {
    let mut c = Ctx::new();
    let src = c.tensor(vec_ty(8, ScalarType::BF16), MemSpace::Global);
    let dst = c.tensor(vec_ty(8, ScalarType::BF16), MemSpace::Register);
    let t = c.per_thread();
    c.expect(Arch::Sm86, SpecKind::Move, t, vec![src], vec![dst], "ld.global.v4.u32");
}
