//! End-to-end daemon tests over real localhost sockets: lifecycle,
//! cache warm-up, async jobs, admission control, and graceful drain.

use graphene_serve::client::{request, Connection};
use graphene_serve::{ServeOptions, Server};
use graphene_tune::json::{parse, Json};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);

fn get<'j>(v: &'j Json, path: &[&str]) -> &'j Json {
    path.iter().fold(v, |v, k| v.get(k).unwrap_or_else(|| panic!("missing field {k} in {v:?}")))
}

fn spawn_server(opts: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(opts).expect("bind");
    let addr = server.local_addr().expect("local_addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn full_lifecycle_over_one_connection() {
    let (addr, handle) = spawn_server(ServeOptions::default());
    let mut conn = Connection::connect(&addr, TIMEOUT).expect("connect");

    // lint
    let lint = parse(
        &conn.request(r#"{"id":1,"cmd":"lint","kernel":"gemm","m":256,"n":256,"k":64}"#).unwrap(),
    )
    .unwrap();
    assert_eq!(lint.get("ok"), Some(&Json::Bool(true)), "{lint:?}");
    assert_eq!(get(&lint, &["id"]).as_i64(), Some(1));
    assert_eq!(get(&lint, &["errors"]).as_i64(), Some(0));

    // run cold then warm: trace-cache hit, identical checksum.
    let line = r#"{"id":2,"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}"#;
    let cold = parse(&conn.request(line).unwrap()).unwrap();
    let warm = parse(&conn.request(line).unwrap()).unwrap();
    assert_eq!(get(&cold, &["trace_hit"]), &Json::Bool(false));
    assert_eq!(get(&warm, &["trace_hit"]), &Json::Bool(true));
    assert_eq!(get(&cold, &["checksum"]).as_f64(), get(&warm, &["checksum"]).as_f64());

    // tune cold then warm: second is a db hit with zero simulations.
    let tline = r#"{"id":3,"cmd":"tune","kernel":"layernorm","rows":512,"hidden":512}"#;
    let t_cold = parse(&conn.request(tline).unwrap()).unwrap();
    let t_warm = parse(&conn.request(tline).unwrap()).unwrap();
    assert_eq!(get(&t_cold, &["db_hit"]), &Json::Bool(false), "{t_cold:?}");
    assert_eq!(get(&t_warm, &["db_hit"]), &Json::Bool(true));
    assert_eq!(get(&t_warm, &["stats", "simulated"]).as_i64(), Some(0));

    // run-graph warm-up through the graph-trace cache.
    let gline = r#"{"cmd":"run-graph","layers":1,"seq":64,"hidden":256,"heads":4,"ffn":512,"exec":"replay"}"#;
    let g_cold = parse(&conn.request(gline).unwrap()).unwrap();
    let g_warm = parse(&conn.request(gline).unwrap()).unwrap();
    assert_eq!(get(&g_cold, &["graph_hit"]), &Json::Bool(false), "{g_cold:?}");
    assert_eq!(get(&g_warm, &["graph_hit"]), &Json::Bool(true));
    assert_eq!(get(&g_cold, &["checksum"]).as_f64(), get(&g_warm, &["checksum"]).as_f64());

    // stats reflect all of the above.
    let stats = parse(&conn.request(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
    // run-graph recording also flows through the kernel trace cache,
    // so at least the warm `run` hit is visible (possibly more).
    assert!(get(&stats, &["caches", "traces", "hits"]).as_i64().unwrap() >= 1);
    assert_eq!(get(&stats, &["caches", "plans", "hits"]).as_i64(), Some(1));
    assert_eq!(get(&stats, &["caches", "graphs", "hits"]).as_i64(), Some(1));
    assert_eq!(get(&stats, &["caches", "tune_db", "hits"]).as_i64(), Some(1));
    assert!(get(&stats, &["requests", "run", "count"]).as_i64().unwrap() >= 2);

    // shutdown drains the server; the run thread exits cleanly.
    let bye = parse(&conn.request(r#"{"cmd":"shutdown"}"#).unwrap()).unwrap();
    assert_eq!(get(&bye, &["draining"]), &Json::Bool(true));
    handle.join().expect("server thread").expect("server run");

    // The drained server refuses new connections.
    assert!(request(&addr, r#"{"cmd":"stats"}"#, Duration::from_secs(2)).is_err());
}

#[test]
fn async_tune_job_polls_to_completion_and_cancel_works() {
    let (addr, handle) = spawn_server(ServeOptions::default());
    let mut conn = Connection::connect(&addr, TIMEOUT).expect("connect");

    // Force the job path even though the search is small.
    let resp = parse(
        &conn
            .request(r#"{"cmd":"tune","kernel":"layernorm","rows":512,"hidden":512,"job":true}"#)
            .unwrap(),
    )
    .unwrap();
    let id = get(&resp, &["job"]).as_i64().expect("job id");
    assert_eq!(get(&resp, &["state"]).as_str(), Some("queued"));
    assert!(get(&resp, &["planned"]).as_i64().unwrap() > 0);

    // Poll until done.
    let mut polled = None;
    for _ in 0..600 {
        let p = parse(&conn.request(&format!(r#"{{"cmd":"poll","job":{id}}}"#)).unwrap()).unwrap();
        let state = get(&p, &["state"]).as_str().unwrap().to_string();
        assert!(p.get("ok") == Some(&Json::Bool(true)));
        if state == "done" {
            polled = Some(p);
            break;
        }
        assert!(state == "queued" || state == "running", "unexpected state {state}");
        std::thread::sleep(Duration::from_millis(100));
    }
    let polled = polled.expect("job did not finish in 60s");
    assert_eq!(get(&polled, &["progress", "fraction"]).as_f64(), Some(1.0));
    assert!(get(&polled, &["result", "stats", "simulated"]).as_i64().unwrap() > 0);

    // Cancelling a finished job is a no-op; cancelling an unknown id errors.
    let c = parse(&conn.request(&format!(r#"{{"cmd":"cancel","job":{id}}}"#)).unwrap()).unwrap();
    assert_eq!(get(&c, &["state"]).as_str(), Some("done"));
    let bad = parse(&conn.request(r#"{"cmd":"cancel","job":424242}"#).unwrap()).unwrap();
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));

    conn.request(r#"{"cmd":"shutdown"}"#).unwrap();
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn admission_control_busy_rejects_past_the_queue_bound() {
    // One worker, one queue slot. Connection A pins the worker (it is
    // being served and stays open); B fills the queue; C must be
    // busy-rejected.
    let opts = ServeOptions { workers: 1, queue_cap: 1, deadline_ms: 0, ..Default::default() };
    let (addr, handle) = spawn_server(opts);

    let mut a = Connection::connect(&addr, TIMEOUT).expect("connect A");
    // Make sure A is actually being served (a completed round-trip
    // proves a worker owns it).
    a.request(r#"{"cmd":"stats"}"#).unwrap();

    let _b = Connection::connect(&addr, TIMEOUT).expect("connect B");
    // B sits in the admission queue; give the accept loop time to see
    // it before C arrives.
    std::thread::sleep(Duration::from_millis(300));

    let mut c = Connection::connect(&addr, TIMEOUT).expect("connect C");
    let rejected = parse(&c.request(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)), "{rejected:?}");
    assert!(get(&rejected, &["error"]).as_str().unwrap().contains("busy"));

    // A still works, and its stats show the rejection.
    let stats = parse(&a.request(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
    assert!(get(&stats, &["busy_rejected"]).as_i64().unwrap() >= 1);

    a.request(r#"{"cmd":"shutdown"}"#).unwrap();
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn queue_wait_deadline_rejects_stale_connections() {
    // One worker with a 50 ms queue deadline: A pins the worker for
    // 400 ms while B waits in the queue past its deadline.
    let opts = ServeOptions { workers: 1, queue_cap: 8, deadline_ms: 50, ..Default::default() };
    let (addr, handle) = spawn_server(opts);

    let mut a = Connection::connect(&addr, TIMEOUT).expect("connect A");
    a.request(r#"{"cmd":"stats"}"#).unwrap();

    let mut b = Connection::connect(&addr, TIMEOUT).expect("connect B");
    std::thread::sleep(Duration::from_millis(400));
    drop(a); // frees the worker, which now pops B — stale by 400 ms

    let resp = parse(&b.request(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp:?}");
    assert!(get(&resp, &["error"]).as_str().unwrap().contains("deadline"));

    let mut c = Connection::connect(&addr, TIMEOUT).expect("connect C");
    let stats = parse(&c.request(r#"{"cmd":"stats"}"#).unwrap()).unwrap();
    assert!(get(&stats, &["deadline_rejected"]).as_i64().unwrap() >= 1);

    c.request(r#"{"cmd":"shutdown"}"#).unwrap();
    handle.join().expect("server thread").expect("server run");
}
