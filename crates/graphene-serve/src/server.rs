//! The daemon itself: a `std::net` TCP listener feeding a bounded
//! worker-thread pool — no async runtime, no external dependencies.
//!
//! ## Threading model
//!
//! - The **accept thread** (the caller of [`Server::run`]) polls a
//!   nonblocking listener. Accepted connections enter a bounded
//!   admission queue; when the queue is full the connection is
//!   answered `{"ok":false,"error":"busy: ..."}` and closed
//!   immediately — explicit back-pressure instead of unbounded memory.
//! - **Request workers** pop connections and serve them request-by-
//!   request. A connection that out-waited the per-request deadline in
//!   the queue is rejected (`deadline exceeded`) without doing work —
//!   by the time a response could be computed the client has given up.
//! - **Job workers** drain the long-tune queue ([`crate::jobs`]).
//!
//! ## Drain
//!
//! A `shutdown` request or SIGTERM/SIGINT (see
//! [`install_signal_handlers`]) flips the drain flag: the accept loop
//! stops, in-flight requests finish, queued connections are still
//! served, running tunes are cooperatively cancelled, and `run`
//! returns. Nothing is killed mid-request.

use crate::handlers;
use crate::state::{ServerState, DEFAULT_SYNC_TUNE_LIMIT};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Request worker threads.
    pub workers: usize,
    /// Admission-queue bound; connections past it are busy-rejected.
    pub queue_cap: usize,
    /// Max milliseconds a connection may wait in the admission queue
    /// before being rejected; `0` disables the deadline.
    pub deadline_ms: u64,
    /// Tunes with more planned proposals than this become async jobs.
    pub sync_tune_limit: usize,
    /// Job worker threads for long tunes.
    pub job_workers: usize,
    /// Optional `tune-cache.json` path for a persistent tuning
    /// database; in-memory when absent.
    pub cache: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            deadline_ms: 5000,
            sync_tune_limit: DEFAULT_SYNC_TUNE_LIMIT,
            job_workers: 1,
            cache: None,
        }
    }
}

/// Set by the signal handler; polled by the accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that trigger a graceful drain of
/// every server in the process. Declared against raw `signal(2)` so
/// the workspace stays free of external crates; the handler only
/// stores an atomic flag, which is async-signal-safe.
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let h = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, h);
        signal(SIGINT, h);
    }
}

#[derive(Default)]
struct ConnQueue {
    q: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
}

/// A bound-but-not-yet-running daemon. Binding is separate from
/// running so callers learn the OS-assigned port (and can hand the
/// shared state to an in-process bench harness) before serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    opts: ServeOptions,
}

impl Server {
    /// Binds the listener and builds the resident state.
    ///
    /// # Errors
    ///
    /// Socket errors from `TcpListener::bind`.
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let mut state = ServerState::new(opts.cache.as_deref());
        state.sync_tune_limit = opts.sync_tune_limit;
        Ok(Server { listener, state: Arc::new(state), opts })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Socket errors from the OS.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared resident state (for tests and the bench harness).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the daemon on the calling thread until drained.
    ///
    /// # Errors
    ///
    /// Socket-configuration errors; individual connection errors are
    /// contained to their connection.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, state, opts } = self;
        listener.set_nonblocking(true)?;
        let queue = ConnQueue::default();
        let state = &*state;
        let queue = &queue;
        let opts = &opts;
        std::thread::scope(|s| {
            for _ in 0..opts.workers.max(1) {
                s.spawn(move || worker_loop(state, queue, opts));
            }
            for _ in 0..opts.job_workers.max(1) {
                s.spawn(move || {
                    while let Some((job, req)) = state.jobs.pop() {
                        handlers::run_tune_job(state, &req, &job);
                    }
                });
            }
            loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    state.start_drain();
                }
                if state.is_draining() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => admit(state, queue, opts, stream),
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    // Transient accept errors (e.g. aborted handshakes)
                    // must not kill the daemon.
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
            // Drain: `start_drain` already closed the job queue; wake
            // request workers so they notice and exit once the
            // admission queue is empty. The scope joins everything.
            drop(listener);
            queue.ready.notify_all();
        });
        Ok(())
    }
}

/// Admission control: enqueue within the bound, busy-reject past it.
fn admit(state: &ServerState, queue: &ConnQueue, opts: &ServeOptions, stream: TcpStream) {
    let mut q = queue.q.lock().expect("admission queue poisoned");
    if q.len() >= opts.queue_cap.max(1) {
        drop(q);
        state.metrics.busy_rejected.fetch_add(1, Ordering::Relaxed);
        reject(stream, "busy: admission queue full, retry later");
        return;
    }
    q.push_back((stream, Instant::now()));
    drop(q);
    state.metrics.queued.fetch_add(1, Ordering::Relaxed);
    queue.ready.notify_one();
}

/// Writes a one-line error and closes the connection.
fn reject(mut stream: TcpStream, msg: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(crate::proto::err_envelope(0, msg).as_bytes());
    let _ = stream.write_all(b"\n");
}

fn worker_loop(state: &ServerState, queue: &ConnQueue, opts: &ServeOptions) {
    loop {
        let conn = {
            let mut q = queue.q.lock().expect("admission queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    state.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                    break Some(c);
                }
                if state.is_draining() {
                    break None;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("admission queue poisoned");
                q = guard;
            }
        };
        let Some((stream, enqueued)) = conn else { return };
        if opts.deadline_ms > 0 && enqueued.elapsed() > Duration::from_millis(opts.deadline_ms) {
            state.metrics.deadline_rejected.fetch_add(1, Ordering::Relaxed);
            reject(
                stream,
                &format!(
                    "deadline exceeded: waited over {}ms in the admission queue",
                    opts.deadline_ms
                ),
            );
            continue;
        }
        serve_conn(state, stream);
    }
}

/// Serves one connection: newline-delimited requests, one response
/// line each, until EOF — or until the daemon starts draining, at
/// which point the connection is closed after the in-flight request.
fn serve_conn(state: &ServerState, mut stream: TcpStream) {
    // The short read timeout is what lets an idle keep-alive
    // connection notice a drain instead of pinning its worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let resp = handlers::dispatch(state, line);
            if stream.write_all(resp.as_bytes()).and_then(|()| stream.write_all(b"\n")).is_err() {
                return;
            }
            if state.is_draining() {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if state.is_draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
