//! Request metrics: per-command latency histograms plus admission
//! counters, all lock-free (`AtomicU64`) so the hot request path never
//! serializes on bookkeeping.
//!
//! Latencies are recorded in microseconds into log₂ buckets — bucket
//! *i* holds requests that took `< 2^i us` — which is plenty for the
//! cold-vs-warm contrast the daemon exists to demonstrate (a cold
//! `run` records a trace in milliseconds; a warm one replays in
//! microseconds, several buckets down).

use std::sync::atomic::{AtomicU64, Ordering};

/// The fixed command set with per-command histograms, in render order.
pub const CMDS: &[&str] =
    &["lint", "run", "run-graph", "tune", "poll", "cancel", "stats", "shutdown"];

const BUCKETS: usize = 28;

/// One command's latency histogram.
#[derive(Debug, Default)]
struct Hist {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Hist {
    fn record(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (us) of the bucket containing quantile `q`.
    fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn render_json(&self) -> String {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum_us.load(Ordering::Relaxed);
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        format!(
            "{{\"count\":{count},\"mean_us\":{mean:.1},\"p50_us\":{},\"p99_us\":{}}}",
            self.quantile_us(0.50),
            self.quantile_us(0.99)
        )
    }
}

/// Process-wide request metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    hists: [Hist; CMDS.len()],
    /// Requests currently executing in a worker.
    pub in_flight: AtomicU64,
    /// Connections waiting in the admission queue.
    pub queued: AtomicU64,
    /// Connections rejected because the admission queue was full.
    pub busy_rejected: AtomicU64,
    /// Connections rejected because they out-waited the deadline.
    pub deadline_rejected: AtomicU64,
    /// Request lines that failed to parse.
    pub malformed: AtomicU64,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one completed request of type `cmd` taking `us`
    /// microseconds. Unknown commands are dropped (they were rejected
    /// before doing work).
    pub fn record(&self, cmd: &str, us: u64) {
        if let Some(i) = CMDS.iter().position(|c| *c == cmd) {
            self.hists[i].record(us);
        }
    }

    /// Completed-request count for `cmd`.
    pub fn count(&self, cmd: &str) -> u64 {
        CMDS.iter()
            .position(|c| *c == cmd)
            .map_or(0, |i| self.hists[i].count.load(Ordering::Relaxed))
    }

    /// Renders the `"requests"` object for the `stats` response:
    /// `{"run":{"count":..,"mean_us":..,"p50_us":..,"p99_us":..},...}`
    /// (commands with no traffic are omitted).
    pub fn render_json(&self) -> String {
        let fields: Vec<String> = CMDS
            .iter()
            .zip(&self.hists)
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(c, h)| format!("\"{c}\":{}", h.render_json()))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_separate_cold_from_warm() {
        let m = Metrics::new();
        // Two cold requests (5 ms) and ninety-eight warm ones (20 us).
        m.record("run", 5_000);
        m.record("run", 5_000);
        for _ in 0..98 {
            m.record("run", 20);
        }
        assert_eq!(m.count("run"), 100);
        let json = m.render_json();
        assert!(json.contains("\"run\":{\"count\":100"), "{json}");
        // p50 sits in the warm bucket (<= 32 us), p99 in the cold one.
        let h = &m.hists[CMDS.iter().position(|c| *c == "run").unwrap()];
        assert!(h.quantile_us(0.5) <= 32, "p50 {}", h.quantile_us(0.5));
        assert!(h.quantile_us(0.99) >= 4096, "p99 {}", h.quantile_us(0.99));
    }

    #[test]
    fn unknown_and_idle_commands_stay_out_of_the_report() {
        let m = Metrics::new();
        m.record("frobnicate", 10);
        assert_eq!(m.render_json(), "{}");
        m.record("lint", 10);
        assert!(m.render_json().starts_with("{\"lint\""));
        assert_eq!(m.count("tune"), 0);
    }
}
