//! The wire protocol: newline-delimited JSON, one object per line.
//!
//! A request is a *flat* JSON object: `"cmd"` names the operation,
//! an optional numeric `"id"` is echoed back verbatim, and every
//! other field is stringified into an option map — the exact
//! `HashMap<String, String>` shape the kernel/tune catalogs consume,
//! so a request field `"m": 256` and a CLI flag `--m 256` take the
//! same parsing and validation path:
//!
//! ```text
//! {"id":1,"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}
//! {"id":1,"ok":true,"kernel":"sm86_gemm_256x256x64", ... ,"checksum":12998.310547}
//! ```
//!
//! Responses are flat objects too: `"id"` (echoed), `"ok"`, then
//! per-command fields, or `"error"` when `"ok"` is `false`. [`Obj`] is
//! the shared response builder.

use graphene_tune::json::{escape, parse, Json};
use std::collections::HashMap;

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response (0 when
    /// the client sent none).
    pub id: u64,
    /// The operation: `lint`, `run`, `run-graph`, `tune`, `poll`,
    /// `cancel`, `stats`, or `shutdown`.
    pub cmd: String,
    /// Every other field, stringified — consumed exactly like CLI
    /// `--key value` options.
    pub opts: HashMap<String, String>,
}

impl Request {
    /// Option lookup.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A user-facing message for malformed JSON, a missing/non-string
/// `"cmd"`, or non-scalar option values.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let Json::Obj(fields) = parse(line)? else {
        return Err("request must be a JSON object".into());
    };
    let mut id = 0;
    let mut cmd = None;
    let mut opts = HashMap::new();
    for (key, value) in fields {
        match (key.as_str(), &value) {
            ("id", v) => {
                id = v.as_i64().filter(|&n| n >= 0).ok_or("`id` must be a non-negative integer")?
                    as u64;
            }
            ("cmd", Json::Str(s)) => cmd = Some(s.clone()),
            ("cmd", _) => return Err("`cmd` must be a string".into()),
            (_, Json::Str(s)) => {
                opts.insert(key, s.clone());
            }
            (_, Json::Num(n)) => {
                // Integers render without the trailing `.0` so the
                // catalogs' integer parsing accepts them.
                let s = if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                };
                opts.insert(key, s);
            }
            (_, Json::Bool(b)) => {
                opts.insert(key, b.to_string());
            }
            (_, Json::Null) => {}
            (k, _) => return Err(format!("option `{k}` must be a scalar")),
        }
    }
    let cmd = cmd.ok_or("request needs a `cmd` field")?;
    Ok(Request { id, cmd, opts })
}

/// A flat JSON object builder for response lines.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an integer field.
    pub fn num(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn int(mut self, k: &str, v: i64) -> Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (caller guarantees
    /// validity — e.g. another [`Obj::finish`], a `{:.6}` float, or an
    /// array literal).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The success-response envelope: `{"id":ID,"ok":true, <fields>}`.
pub fn ok_envelope(id: u64, fields: Obj) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true{}{}}}",
        if fields.buf.is_empty() { "" } else { "," },
        fields.buf
    )
}

/// The error-response envelope: `{"id":ID,"ok":false,"error":MSG}`.
pub fn err_envelope(id: u64, error: &str) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}", escape(error))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_mixed_scalar_request() {
        let r = parse_request(
            r#"{"id":7,"cmd":"run","kernel":"gemm","m":256,"budget":1.5,"prove":true,"skip":null}"#,
        )
        .unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.cmd, "run");
        assert_eq!(r.opt("kernel"), Some("gemm"));
        assert_eq!(r.opt("m"), Some("256"), "integers must render without `.0`");
        assert_eq!(r.opt("budget"), Some("1.5"));
        assert_eq!(r.opt("prove"), Some("true"));
        assert_eq!(r.opt("skip"), None, "null drops the field");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("[1,2]").unwrap_err().contains("JSON object"));
        assert!(parse_request(r#"{"kernel":"gemm"}"#).unwrap_err().contains("cmd"));
        assert!(parse_request(r#"{"cmd":5}"#).unwrap_err().contains("string"));
        assert!(parse_request(r#"{"cmd":"run","x":[1]}"#).unwrap_err().contains("scalar"));
        assert!(parse_request(r#"{"cmd":"run","id":-3}"#).unwrap_err().contains("non-negative"));
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn envelopes_and_builder_compose_to_valid_json() {
        let fields = Obj::new()
            .str("kernel", "a\"b")
            .num("steps", 12)
            .bool("hit", true)
            .raw("checksum", "1.500000")
            .raw("nested", &Obj::new().int("x", -1).finish());
        let line = ok_envelope(3, fields);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("kernel").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("nested").unwrap().get("x").and_then(Json::as_i64), Some(-1));
        let e = parse(&err_envelope(0, "bad `thing`")).unwrap();
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        assert!(e.get("error").and_then(Json::as_str).unwrap().contains("bad"));
    }
}
