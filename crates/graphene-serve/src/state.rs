//! The process-wide resident state: every cache the daemon keeps warm
//! across requests, behind `Sync` interfaces so the whole block is
//! shared by reference across the worker pool.
//!
//! Cache keys are **canonical catalog problem strings** (e.g.
//! `m1024_n256_k64_none`), not launch shapes: two different GEMM
//! problems can share a grid/block shape, so a launch-keyed resident
//! cache would serve the wrong plan or trace.

use crate::jobs::JobQueue;
use crate::metrics::Metrics;
use crate::proto::Request;
use graphene_ir::Arch;
use graphene_sim::{GraphTraceCache, KernelPlan, TraceCache};
use graphene_tune::{CostCache, SharedTuneDb};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of the resident plan cache.
pub type PlanKey = (String, String, Arch);

/// One cached compiled plan plus the metadata responses render.
#[derive(Debug)]
pub struct PlanEntry {
    /// The compiled execution plan.
    pub plan: KernelPlan,
    /// The kernel's name (the plan does not carry it).
    pub kernel_name: String,
    /// Canonical catalog problem key.
    pub problem: String,
}

/// Everything one daemon process keeps resident.
pub struct ServerState {
    plans: Mutex<HashMap<PlanKey, Arc<PlanEntry>>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    /// Kernel traces for `run --exec replay`, LRU-bounded.
    pub traces: TraceCache,
    /// Whole-graph traces for `run-graph --exec replay`.
    pub graphs: GraphTraceCache,
    /// Candidate-pipeline outcomes shared across tunes.
    pub costs: CostCache,
    /// The tuning database: persistent when the server was given
    /// `--cache`, in-memory otherwise (repeat tunes still `db_hit`).
    pub db: SharedTuneDb,
    /// Request metrics.
    pub metrics: Metrics,
    /// Long-tune job queue; payload is the original request.
    pub jobs: JobQueue<Request>,
    /// Tunes whose planned proposal count exceeds this run as async
    /// jobs instead of synchronously (see [`crate::handlers`]).
    pub sync_tune_limit: usize,
    /// Tune requests answered straight from the database.
    pub db_hits: AtomicU64,
    /// Set by `shutdown` or SIGTERM: stop accepting, finish in-flight.
    pub draining: AtomicBool,
}

/// Default [`ServerState::sync_tune_limit`]: an exhaustive layernorm
/// space (~tens of points) stays synchronous; paper-size GEMM spaces
/// (hundreds) become jobs.
pub const DEFAULT_SYNC_TUNE_LIMIT: usize = 128;

impl ServerState {
    /// Fresh state; `cache` is the optional `tune-cache.json` path.
    pub fn new(cache: Option<&str>) -> ServerState {
        ServerState {
            plans: Mutex::new(HashMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            traces: TraceCache::new(),
            graphs: GraphTraceCache::new(),
            costs: CostCache::new(),
            db: cache.map_or_else(SharedTuneDb::in_memory, SharedTuneDb::load),
            metrics: Metrics::new(),
            jobs: JobQueue::new(),
            sync_tune_limit: DEFAULT_SYNC_TUNE_LIMIT,
            db_hits: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The compiled plan for `(kernel, problem, arch)`, building the
    /// kernel and compiling on first request. Compilation happens
    /// outside the map lock, so a cold request never blocks warm ones
    /// for other keys; two racing cold requests may both compile, and
    /// the first insert wins.
    ///
    /// # Errors
    ///
    /// Catalog build errors or plan-compilation errors, as one
    /// user-facing string.
    pub fn plan_for(
        &self,
        name: &str,
        arch: Arch,
        opts: &HashMap<String, String>,
    ) -> Result<(Arc<PlanEntry>, bool), String> {
        // The catalog is the cheap part and also computes the
        // canonical problem key the cache is keyed by — so it runs
        // unconditionally; only kernel *compilation* is memoized.
        let nk = graphene_kernels::catalog::build_named(name, arch, opts)?;
        let key: PlanKey = (name.to_string(), nk.problem.clone(), arch);
        if let Some(entry) = self.plans.lock().expect("plan cache poisoned").get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(entry), true));
        }
        let plan = KernelPlan::compile(&nk.kernel, arch).map_err(|e| e.to_string())?;
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let entry =
            Arc::new(PlanEntry { plan, kernel_name: nk.kernel.name.clone(), problem: nk.problem });
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        let entry = plans.entry(key).or_insert(entry);
        Ok((Arc::clone(entry), false))
    }

    /// `(hits, misses, len)` of the plan cache.
    pub fn plan_stats(&self) -> (u64, u64, usize) {
        (
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
            self.plans.lock().expect("plan cache poisoned").len(),
        )
    }

    /// Whether the daemon is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Flags the daemon to drain (idempotent).
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.jobs.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_distinguishes_problems() {
        let s = ServerState::new(None);
        let o = opts(&[("m", "256"), ("n", "256"), ("k", "64")]);
        let (a, hit_a) = s.plan_for("gemm", Arch::Sm86, &o).unwrap();
        assert!(!hit_a);
        let (b, hit_b) = s.plan_for("gemm", Arch::Sm86, &o).unwrap();
        assert!(hit_b, "second identical request must be a plan hit");
        assert!(Arc::ptr_eq(&a, &b));
        // Same launch shape, different problem: distinct entries.
        let (c, hit_c) = s
            .plan_for("gemm", Arch::Sm86, &opts(&[("m", "1024"), ("n", "256"), ("k", "64")]))
            .unwrap();
        assert!(!hit_c);
        assert_ne!(a.problem, c.problem);
        assert_eq!(s.plan_stats(), (1, 2, 2));
    }

    #[test]
    fn plan_errors_surface_catalog_messages() {
        let s = ServerState::new(None);
        let err = s.plan_for("gemm", Arch::Sm86, &opts(&[("m", "100")])).unwrap_err();
        assert!(err.contains("must tile by"), "{err}");
        assert_eq!(s.plan_stats(), (0, 0, 0), "failed builds must not pollute the cache");
    }
}
