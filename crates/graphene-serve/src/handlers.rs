//! Request handlers: one function per wire command, all routed through
//! [`dispatch`].
//!
//! Handlers delegate kernel/space construction to the shared catalogs
//! (`graphene_kernels::catalog`, `graphene_tune::catalog`) and seed
//! inputs exactly like the one-shot CLI (`HostTensor::random` with
//! seed `1000 + param index`), so a daemon response is bit-identical
//! to the corresponding CLI run — the resident caches change *when*
//! work happens, never *what* is computed.

use crate::jobs::{Job, JobState};
use crate::proto::{err_envelope, ok_envelope, parse_request, Obj, Request};
use crate::state::ServerState;
use graphene_ir::Arch;
use graphene_sim::{
    execute_graph, execute_plan, execute_reference, replay_graph, replay_opt, ExecMode, HostTensor,
    TraceKey,
};
use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// Parses one request line, routes it, and renders the response line.
/// Also records per-command latency and the malformed counter — this
/// is the single entry point worker threads call.
pub fn dispatch(state: &ServerState, line: &str) -> String {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            return err_envelope(0, &e);
        }
    };
    state.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    let start = std::time::Instant::now();
    let result = match req.cmd.as_str() {
        "lint" => lint(&req),
        "run" => run(state, &req),
        "run-graph" => run_graph(state, &req),
        "tune" => tune(state, &req),
        "poll" => poll(state, &req),
        "cancel" => cancel(state, &req),
        "stats" => Ok(stats(state)),
        "shutdown" => {
            state.start_drain();
            Ok(Obj::new().bool("draining", true))
        }
        other => Err(format!(
            "unknown cmd `{other}` (lint|run|run-graph|tune|poll|cancel|stats|shutdown)"
        )),
    };
    let us = start.elapsed().as_micros() as u64;
    state.metrics.record(&req.cmd, us);
    state.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    match result {
        Ok(fields) => ok_envelope(req.id, fields.num("elapsed_us", us)),
        Err(e) => err_envelope(req.id, &e),
    }
}

/// `--arch` parsing, identical to the CLI's.
fn arch_of(req: &Request) -> Result<Arch, String> {
    match req.opt("arch") {
        None | Some("sm86") | Some("ampere") => Ok(Arch::Sm86),
        Some("sm70") | Some("volta") => Ok(Arch::Sm70),
        Some(other) => Err(format!("unknown arch `{other}` (sm70|sm86)")),
    }
}

fn flag(req: &Request, key: &str) -> bool {
    matches!(req.opt(key), Some("true" | "1" | "yes"))
}

/// Seeds kernel inputs exactly like `graphene run`: parameter `i`
/// drawn from seed `1000 + i`.
fn seeded_inputs(
    params: &[(graphene_ir::TensorId, String, usize)],
) -> HashMap<graphene_ir::TensorId, Vec<f32>> {
    let mut inputs = HashMap::new();
    for (i, (id, _, len)) in params.iter().enumerate() {
        inputs.insert(*id, HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec());
    }
    inputs
}

fn counters_json(c: &graphene_sim::Counters) -> String {
    format!(
        "{{\"instructions\":{},\"flops_tc\":{},\"flops_fma\":{},\"syncs\":{}}}",
        c.instructions, c.flops_tc, c.flops_fma, c.syncs
    )
}

/// `lint`: the full static-analysis pipeline, with `--prove` and
/// `--emit text|json` semantics matching the CLI (the `output` field
/// carries the CLI's exact rendering).
fn lint(req: &Request) -> Result<Obj, String> {
    let name = req.opt("kernel").ok_or("lint needs a `kernel` field")?;
    let arch = arch_of(req)?;
    let nk = graphene_kernels::catalog::build_named(name, arch, &req.opts)?;
    let mut plans = graphene_sim::PlanCache::new();
    let diags = graphene_analysis::analyze_kernel_cached(&nk.kernel, arch, &mut plans);
    let errors = graphene_analysis::error_count(&diags);
    let report = flag(req, "prove")
        .then(|| graphene_analysis::prove::prove_kernel_cached(&nk.kernel, arch, &mut plans));
    let output = match req.opt("emit") {
        None | Some("text") => {
            use std::fmt::Write as _;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "lint {} ({arch}): {} diagnostics, {errors} errors",
                nk.kernel.name,
                diags.len()
            );
            for d in &diags {
                let _ = writeln!(out, "  {d}");
            }
            if let Some(r) = &report {
                out.push_str(&r.render_text());
            }
            out
        }
        Some("json") => {
            let mut json = graphene_analysis::render_json(&nk.kernel.name, &diags);
            if let Some(r) = &report {
                let trimmed = json.trim_end().strip_suffix('}').map(str::to_string);
                json = trimmed.unwrap_or(json);
                json.push_str(&format!(",\"proof\":{}}}\n", r.render_json()));
            }
            json
        }
        Some(other) => return Err(format!("unknown emit `{other}` (text|json)")),
    };
    Ok(Obj::new()
        .str("kernel", &nk.kernel.name)
        .str("problem", &nk.problem)
        .num("diagnostics", diags.len() as u64)
        .num("errors", errors as u64)
        .str("output", &output))
}

/// `run`: execute a kernel. `exec` selects the engine exactly like the
/// CLI; the compiled plan comes from the resident plan cache, and the
/// replay engine serves from the resident trace cache — a repeated
/// request replays without recording (`trace_hit: true`).
fn run(state: &ServerState, req: &Request) -> Result<Obj, String> {
    let name = req.opt("kernel").ok_or("run needs a `kernel` field")?;
    let arch = arch_of(req)?;
    enum Engine {
        Reference,
        Plan(ExecMode),
        Replay,
    }
    let engine = match req.opt("exec") {
        None | Some("parallel") => Engine::Plan(ExecMode::Parallel),
        Some("sequential") => Engine::Plan(ExecMode::Sequential),
        Some("reference") => Engine::Reference,
        Some("replay") => Engine::Replay,
        Some(other) => {
            return Err(format!(
                "unknown exec mode `{other}` (reference|sequential|parallel|replay)"
            ))
        }
    };
    let (entry, plan_hit) = state.plan_for(name, arch, &req.opts)?;
    let inputs = seeded_inputs(entry.plan.params());
    let bindings = HashMap::new();
    let mut trace_hit = false;
    let start = std::time::Instant::now();
    let outcome = match &engine {
        Engine::Plan(m) => execute_plan(&entry.plan, &inputs, &bindings, *m),
        Engine::Reference => {
            // The reference interpreter needs the kernel IR itself, so
            // this path (the slow baseline, kept for equivalence
            // checks) rebuilds rather than caching kernels.
            let nk = graphene_kernels::catalog::build_named(name, arch, &req.opts)?;
            execute_reference(&nk.kernel, arch, &inputs)
        }
        Engine::Replay => {
            let key = TraceKey {
                kernel: entry.kernel_name.clone(),
                problem: entry.problem.clone(),
                arch,
            };
            trace_hit = state.traces.contains(&key);
            let trace = state
                .traces
                .get_or_record(&key, &entry.plan, &bindings)
                .map_err(|e| e.to_string())?;
            replay_opt(&trace, &inputs)
        }
    }
    .map_err(|e| e.to_string())?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let checksum: f64 =
        outcome.globals.values().flat_map(|buf| buf.iter()).map(|&x| f64::from(x)).sum();
    let mut fields = Obj::new()
        .str("kernel", &entry.kernel_name)
        .str("problem", &entry.problem)
        .str(
            "engine",
            match &engine {
                Engine::Reference => "reference interpreter",
                Engine::Plan(ExecMode::Sequential) => "compiled (sequential) interpreter",
                Engine::Plan(_) => "compiled (parallel) interpreter",
                Engine::Replay => "trace replay",
            },
        )
        .str(
            "launch",
            &format!("{} blocks x {} threads", entry.plan.grid_size(), entry.plan.block_size()),
        )
        .bool("plan_hit", plan_hit);
    if matches!(engine, Engine::Replay) {
        fields = fields.bool("trace_hit", trace_hit);
    }
    Ok(fields
        .raw("wall_ms", &format!("{wall_ms:.3}"))
        .raw("counters", &counters_json(&outcome.counters))
        .raw("checksum", &format!("{checksum:.6}")))
}

/// `run-graph`: build and execute a whole encoder graph; the replay
/// engine serves from the resident graph-trace cache.
fn run_graph(state: &ServerState, req: &Request) -> Result<Obj, String> {
    use graphene_kernels::exec_lower::{lower_executable, ExecLowering};
    use graphene_kernels::graph::encoder_graph;

    let int = |key: &str, default: i64| graphene_kernels::catalog::opt_int(&req.opts, key, default);
    let (layers, batch, seq) = (int("layers", 2)?, int("batch", 1)?, int("seq", 128)?);
    let (hidden, heads, ffn) = (int("hidden", 256)?, int("heads", 4)?, int("ffn", 1024)?);
    let arch = arch_of(req)?;
    let lowering = match req.opt("lowering") {
        None | Some("fused") => ExecLowering::Fused,
        Some("default") => ExecLowering::Default,
        Some(other) => return Err(format!("unknown lowering `{other}` (default|fused)")),
    };
    let replay_engine = match req.opt("exec") {
        None | Some("plan") => false,
        Some("replay") => true,
        Some(other) => return Err(format!("unknown exec mode `{other}` (plan|replay)")),
    };

    let graph = encoder_graph(layers, batch, seq, hidden, heads, ffn);
    let eg = lower_executable(&graph, arch, lowering)?;
    let ws = eg.workspace();
    let mut inputs = HashMap::new();
    for (i, (name, len)) in eg.externals().iter().enumerate() {
        inputs
            .insert(name.clone(), HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec());
    }

    let mut graph_hit = false;
    let start = std::time::Instant::now();
    let outcome = if replay_engine {
        let hits_before = state.graphs.hits();
        let gt = state.graphs.get_or_record(&eg, &state.traces).map_err(|e| e.to_string())?;
        graph_hit = state.graphs.hits() > hits_before;
        replay_graph(&gt, &inputs, ExecMode::Parallel).map_err(|e| e.to_string())?
    } else {
        execute_graph(&eg, &inputs, ExecMode::Parallel).map_err(|e| e.to_string())?
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let checksum: f64 = {
        let mut temps: Vec<_> = outcome.outputs.iter().collect();
        temps.sort_by_key(|(t, _)| **t);
        temps.iter().flat_map(|(_, buf)| buf.iter()).map(|&x| f64::from(x)).sum()
    };
    let mut fields = Obj::new()
        .raw(
            "graph",
            &format!(
                "{{\"layers\":{layers},\"batch\":{batch},\"seq\":{seq},\"hidden\":{hidden},\
                 \"heads\":{heads},\"ffn\":{ffn},\"ops\":{}}}",
                graph.ops.len()
            ),
        )
        .str("lowering", lowering.label())
        .num("launches", eg.nodes.len() as u64)
        .raw(
            "arena",
            &format!(
                "{{\"planned_bytes\":{},\"naive_bytes\":{}}}",
                ws.arena_bytes(),
                ws.naive_bytes()
            ),
        )
        .str("engine", if replay_engine { "replay" } else { "plan" });
    if replay_engine {
        fields = fields.bool("graph_hit", graph_hit);
    }
    Ok(fields
        .raw("wall_ms", &format!("{wall_ms:.3}"))
        .raw("counters", &counters_json(&outcome.counters))
        .raw("checksum", &format!("{checksum:.6}")))
}

/// Renders a finished tune report as response fields — shared by the
/// synchronous path and job workers (`poll` returns the same object).
fn tune_fields(report: &graphene_tune::TuneReport, arch: Arch) -> Obj {
    let s = &report.stats;
    Obj::new()
        .str("space", &report.space)
        .str("problem", &report.problem)
        .str("arch", &format!("{arch:?}"))
        .str("winner", &report.best_desc)
        .raw("best_time_s", &format!("{:e}", report.best_time_s))
        .raw(
            "stats",
            &format!(
                "{{\"proposed\":{},\"pruned_constraint\":{},\"pruned_analysis\":{},\
                 \"simulated\":{},\"cost_replayed\":{},\"db_hit\":{}}}",
                s.proposed,
                s.pruned_constraint,
                s.pruned_analysis,
                s.simulated,
                s.cost_replayed,
                s.db_hit
            ),
        )
        .bool("db_hit", s.db_hit)
}

/// `tune`: short searches run synchronously; searches whose planned
/// proposal count exceeds the server's limit (or that pass
/// `"job":true`) are enqueued and answered with a job id for `poll`.
fn tune(state: &ServerState, req: &Request) -> Result<Obj, String> {
    let arch = arch_of(req)?;
    let kernel = req.opt("kernel").unwrap_or("gemm");
    let space = graphene_tune::catalog::space_from_options(kernel, arch, &req.opts)?;
    let opts = graphene_tune::catalog::options_from_options(&req.opts)?;
    let planned = graphene_tune::planned_proposals(space.as_ref(), &opts.search);
    if flag(req, "job") || planned > state.sync_tune_limit {
        let job = state.jobs.submit(req.clone(), planned);
        return Ok(Obj::new()
            .num("job", job.id)
            .str("state", "queued")
            .num("planned", planned as u64));
    }
    let report = graphene_tune::tune_observed(
        space.as_ref(),
        &opts,
        Some(&state.db),
        Some(&state.costs),
        None,
    )
    .map_err(|e| e.to_string())?;
    if report.stats.db_hit {
        state.db_hits.fetch_add(1, Ordering::Relaxed);
    }
    Ok(tune_fields(&report, arch))
}

/// Runs one dequeued tune job to completion — called by the server's
/// job-worker threads. Progress flows through the job's observer;
/// cancellation aborts between batches.
pub fn run_tune_job(state: &ServerState, req: &Request, job: &Job) {
    let outcome = (|| -> Result<String, String> {
        let arch = arch_of(req)?;
        let kernel = req.opt("kernel").unwrap_or("gemm");
        let space = graphene_tune::catalog::space_from_options(kernel, arch, &req.opts)?;
        let opts = graphene_tune::catalog::options_from_options(&req.opts)?;
        let report = graphene_tune::tune_observed(
            space.as_ref(),
            &opts,
            Some(&state.db),
            Some(&state.costs),
            Some(&job.progress),
        )
        .map_err(|e| e.to_string())?;
        if report.stats.db_hit {
            state.db_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(tune_fields(&report, arch).finish())
    })();
    state.jobs.finish(job, outcome);
}

fn job_id(req: &Request) -> Result<u64, String> {
    req.opt("job")
        .ok_or("needs a `job` field")?
        .parse()
        .map_err(|_| "`job` must be a job id".to_string())
}

/// `poll`: a job's state and progress; a finished job carries its
/// result object.
fn poll(state: &ServerState, req: &Request) -> Result<Obj, String> {
    let id = job_id(req)?;
    let job = state.jobs.get(id).ok_or_else(|| format!("unknown job id {id}"))?;
    let (done, planned) = job.progress_counts();
    let js = job.state();
    let mut fields = Obj::new().num("job", id).str("state", js.label()).raw(
        "progress",
        &format!(
            "{{\"proposed\":{done},\"planned\":{planned},\"fraction\":{:.4}}}",
            job.fraction()
        ),
    );
    match js {
        JobState::Done(result) => fields = fields.raw("result", &result),
        JobState::Failed(e) => fields = fields.str("job_error", &e),
        _ => {}
    }
    Ok(fields)
}

/// `cancel`: cooperative cancellation; reports the state the job was
/// in when the request arrived.
fn cancel(state: &ServerState, req: &Request) -> Result<Obj, String> {
    let id = job_id(req)?;
    let was = state.jobs.cancel(id).ok_or_else(|| format!("unknown job id {id}"))?;
    let job = state.jobs.get(id).ok_or_else(|| format!("unknown job id {id}"))?;
    Ok(Obj::new().num("job", id).str("was", was.label()).str("state", job.state().label()))
}

/// `stats`: per-cache hit/miss/eviction counters, request latency
/// histograms, and queue gauges.
fn stats(state: &ServerState) -> Obj {
    let (plan_hits, plan_misses, plan_len) = state.plan_stats();
    let (jobs_queued, jobs_running, jobs_finished) = state.jobs.counts();
    let m = &state.metrics;
    Obj::new()
        .raw("requests", &m.render_json())
        .raw(
            "caches",
            &Obj::new()
                .raw(
                    "plans",
                    &format!(
                        "{{\"hits\":{plan_hits},\"misses\":{plan_misses},\"entries\":{plan_len}}}"
                    ),
                )
                .raw(
                    "traces",
                    &format!(
                        "{{\"hits\":{},\"recordings\":{},\"evictions\":{},\"entries\":{},\
                         \"resident_bytes\":{}}}",
                        state.traces.hits(),
                        state.traces.recordings(),
                        state.traces.evictions(),
                        state.traces.len(),
                        state.traces.resident_bytes()
                    ),
                )
                .raw(
                    "graphs",
                    &format!(
                        "{{\"hits\":{},\"recordings\":{},\"evictions\":{},\"entries\":{},\
                         \"resident_bytes\":{}}}",
                        state.graphs.hits(),
                        state.graphs.recordings(),
                        state.graphs.evictions(),
                        state.graphs.len(),
                        state.graphs.resident_bytes()
                    ),
                )
                .raw(
                    "costs",
                    &format!(
                        "{{\"replays\":{},\"recordings\":{}}}",
                        state.costs.replays(),
                        state.costs.recordings()
                    ),
                )
                .raw(
                    "tune_db",
                    &format!(
                        "{{\"hits\":{},\"entries\":{},\"persistent\":{}}}",
                        state.db_hits.load(Ordering::Relaxed),
                        state.db.len(),
                        state.db.is_persistent()
                    ),
                )
                .finish(),
        )
        .raw(
            "jobs",
            &format!(
                "{{\"queued\":{jobs_queued},\"running\":{jobs_running},\
                 \"finished\":{jobs_finished}}}"
            ),
        )
        .num("in_flight", m.in_flight.load(Ordering::Relaxed))
        .num("queued", m.queued.load(Ordering::Relaxed))
        .num("busy_rejected", m.busy_rejected.load(Ordering::Relaxed))
        .num("deadline_rejected", m.deadline_rejected.load(Ordering::Relaxed))
        .num("malformed", m.malformed.load(Ordering::Relaxed))
        .bool("draining", state.is_draining())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_tune::json::{parse, Json};

    fn get<'j>(v: &'j Json, path: &[&str]) -> &'j Json {
        path.iter().fold(v, |v, k| v.get(k).unwrap_or_else(|| panic!("missing field {k}")))
    }

    #[test]
    fn run_twice_hits_plan_and_trace_caches_with_identical_checksums() {
        let state = ServerState::new(None);
        let line = r#"{"id":1,"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}"#;
        let cold = parse(&dispatch(&state, line)).unwrap();
        assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "{cold:?}");
        assert_eq!(get(&cold, &["trace_hit"]), &Json::Bool(false));
        let warm = parse(&dispatch(&state, line)).unwrap();
        assert_eq!(get(&warm, &["trace_hit"]), &Json::Bool(true));
        assert_eq!(get(&warm, &["plan_hit"]), &Json::Bool(true));
        assert_eq!(
            get(&cold, &["checksum"]).as_f64(),
            get(&warm, &["checksum"]).as_f64(),
            "replayed run must be bit-identical to the recording run"
        );
        // And the parallel engine agrees with replay on the checksum.
        let plan =
            parse(&dispatch(&state, r#"{"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64}"#))
                .unwrap();
        assert_eq!(get(&plan, &["checksum"]).as_f64(), get(&cold, &["checksum"]).as_f64());
    }

    #[test]
    fn lint_reports_clean_kernel_and_unknown_kernel_errors() {
        let state = ServerState::new(None);
        let ok = parse(&dispatch(
            &state,
            r#"{"cmd":"lint","kernel":"gemm","m":256,"n":256,"k":64,"prove":true}"#,
        ))
        .unwrap();
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(get(&ok, &["errors"]).as_i64(), Some(0));
        let text = get(&ok, &["output"]).as_str().unwrap();
        assert!(text.contains("0 errors"), "{text}");
        assert!(text.contains("proof (F2 symbolic)"), "{text}");
        let bad = parse(&dispatch(&state, r#"{"cmd":"lint","kernel":"nope"}"#)).unwrap();
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(get(&bad, &["error"]).as_str().unwrap().contains("unknown kernel"));
    }

    #[test]
    fn repeat_tune_is_a_db_hit_with_zero_simulations() {
        let state = ServerState::new(None);
        let line = r#"{"cmd":"tune","kernel":"layernorm","rows":512,"hidden":512}"#;
        let cold = parse(&dispatch(&state, line)).unwrap();
        assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "{cold:?}");
        assert_eq!(get(&cold, &["db_hit"]), &Json::Bool(false));
        let warm = parse(&dispatch(&state, line)).unwrap();
        assert_eq!(get(&warm, &["db_hit"]), &Json::Bool(true));
        assert_eq!(get(&warm, &["stats", "simulated"]).as_i64(), Some(0));
        assert_eq!(
            get(&warm, &["winner"]).as_str(),
            get(&cold, &["winner"]).as_str(),
            "the warm winner must be the recorded one"
        );
        // The stats endpoint shows the db hit.
        let st = parse(&dispatch(&state, r#"{"cmd":"stats"}"#)).unwrap();
        assert_eq!(get(&st, &["caches", "tune_db", "hits"]).as_i64(), Some(1));
    }

    #[test]
    fn forced_job_tune_completes_through_poll() {
        let state = ServerState::new(None);
        let resp = parse(&dispatch(
            &state,
            r#"{"cmd":"tune","kernel":"layernorm","rows":512,"hidden":512,"job":true}"#,
        ))
        .unwrap();
        let id = get(&resp, &["job"]).as_i64().unwrap() as u64;
        assert_eq!(get(&resp, &["state"]).as_str(), Some("queued"));
        // Run the job inline (no worker thread in this unit test).
        let (job, req) = state.jobs.pop().unwrap();
        run_tune_job(&state, &req, &job);
        let polled = parse(&dispatch(&state, &format!(r#"{{"cmd":"poll","job":{id}}}"#))).unwrap();
        assert_eq!(get(&polled, &["state"]).as_str(), Some("done"));
        assert_eq!(get(&polled, &["progress", "fraction"]).as_f64(), Some(1.0));
        assert_eq!(get(&polled, &["result", "db_hit"]), &Json::Bool(false));
        assert!(get(&polled, &["result", "stats", "simulated"]).as_i64().unwrap() > 0);
    }

    #[test]
    fn cancel_and_malformed_and_unknown_paths() {
        let state = ServerState::new(None);
        let err = parse(&dispatch(&state, "not json")).unwrap();
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let unknown = parse(&dispatch(&state, r#"{"cmd":"frobnicate"}"#)).unwrap();
        assert!(get(&unknown, &["error"]).as_str().unwrap().contains("unknown cmd"));
        let resp = parse(&dispatch(
            &state,
            r#"{"cmd":"tune","kernel":"layernorm","rows":512,"hidden":512,"job":true}"#,
        ))
        .unwrap();
        let id = get(&resp, &["job"]).as_i64().unwrap();
        let c = parse(&dispatch(&state, &format!(r#"{{"cmd":"cancel","job":{id}}}"#))).unwrap();
        assert_eq!(get(&c, &["state"]).as_str(), Some("cancelled"));
        let nope = parse(&dispatch(&state, r#"{"cmd":"poll","job":9999}"#)).unwrap();
        assert!(get(&nope, &["error"]).as_str().unwrap().contains("unknown job"));
        let st = parse(&dispatch(&state, r#"{"cmd":"stats"}"#)).unwrap();
        assert_eq!(get(&st, &["malformed"]).as_i64(), Some(1));
    }
}
