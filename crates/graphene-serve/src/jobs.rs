//! The async job queue for long tunes.
//!
//! A `tune` request whose planned proposal count exceeds the server's
//! synchronous limit (or that asks `"job":"true"`) is enqueued here and
//! answered immediately with a job id; dedicated job-worker threads
//! drain the queue. `poll` reports the job's state and a progress
//! fraction fed by the tuner's batch-granular [`TuneProgress`]
//! callbacks; `cancel` flips a flag the tuner checks between batches,
//! so cancellation is cooperative but prompt (one batch ≤ 64 points).

use graphene_tune::TuneProgress;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a job worker.
    Queued,
    /// A worker is tuning.
    Running,
    /// Finished; the payload is the rendered result object (the same
    /// fields a synchronous `tune` response carries).
    Done(String),
    /// The search failed; the payload is the error message.
    Failed(String),
    /// Cancelled before or during the search.
    Cancelled,
}

impl JobState {
    /// Stable lower-case label for responses.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Progress observer handed to the tuner: proposal counts flow in from
/// `on_progress`, the cancel flag flows out through `cancelled`.
#[derive(Debug, Default)]
pub struct JobProgress {
    done: AtomicUsize,
    planned: AtomicUsize,
    cancel: AtomicBool,
}

impl TuneProgress for JobProgress {
    fn on_progress(&self, proposed: usize, planned: usize) {
        self.done.store(proposed, Ordering::Relaxed);
        self.planned.store(planned, Ordering::Relaxed);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// One tracked job.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id, returned to the client.
    pub id: u64,
    state: Mutex<JobState>,
    /// Progress shared with the running tuner.
    pub progress: JobProgress,
}

impl Job {
    /// Snapshot of the state.
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job poisoned").clone()
    }

    /// Progress as `(proposed, planned)`.
    pub fn progress_counts(&self) -> (usize, usize) {
        (self.progress.done.load(Ordering::Relaxed), self.progress.planned.load(Ordering::Relaxed))
    }

    /// Progress fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        let (done, planned) = self.progress_counts();
        match &*self.state.lock().expect("job poisoned") {
            JobState::Done(_) => 1.0,
            _ if planned == 0 => 0.0,
            _ => (done as f64 / planned as f64).min(1.0),
        }
    }

    fn set_state(&self, s: JobState) {
        *self.state.lock().expect("job poisoned") = s;
    }
}

/// The queue itself, generic over the work payload (the server
/// enqueues the parsed tune [`Request`](crate::proto::Request); tests
/// enqueue whatever they like).
#[derive(Debug)]
pub struct JobQueue<T> {
    next_id: AtomicU64,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    jobs: HashMap<u64, Arc<Job>>,
    queue: VecDeque<(Arc<Job>, T)>,
    closed: bool,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue {
            next_id: AtomicU64::new(1),
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }
}

impl<T> JobQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues `work` with expected proposal count `planned`,
    /// returning the job handle (already registered for `poll`).
    pub fn submit(&self, work: T, planned: usize) -> Arc<Job> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id,
            state: Mutex::new(JobState::Queued),
            progress: JobProgress::default(),
        });
        job.progress.planned.store(planned, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("job queue poisoned");
        inner.jobs.insert(id, Arc::clone(&job));
        inner.queue.push_back((Arc::clone(&job), work));
        drop(inner);
        self.ready.notify_one();
        job
    }

    /// Blocks for the next runnable job, skipping jobs cancelled while
    /// queued. Returns `None` once the queue is closed and empty —
    /// the worker's signal to exit.
    pub fn pop(&self) -> Option<(Arc<Job>, T)> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            while let Some((job, work)) = inner.queue.pop_front() {
                if job.state() == JobState::Queued {
                    job.set_state(JobState::Running);
                    return Some((job, work));
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue poisoned");
        }
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner.lock().expect("job queue poisoned").jobs.get(&id).cloned()
    }

    /// Requests cancellation: a queued job is cancelled outright; a
    /// running one has its flag set and the tuner stops at the next
    /// batch boundary. Returns the state observed at call time, or
    /// `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let job = self.get(id)?;
        let state = job.state();
        match state {
            JobState::Queued => job.set_state(JobState::Cancelled),
            JobState::Running => job.progress.cancel.store(true, Ordering::Relaxed),
            _ => {}
        }
        Some(state)
    }

    /// Marks a popped job finished.
    pub fn finish(&self, job: &Job, outcome: Result<String, String>) {
        job.set_state(match outcome {
            _ if job.progress.cancelled() => JobState::Cancelled,
            Ok(result) => JobState::Done(result),
            Err(e) => JobState::Failed(e),
        });
    }

    /// Closes the queue for draining: cancels everything still queued,
    /// flags running jobs to stop, and wakes all workers so they can
    /// exit. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        for job in inner.jobs.values() {
            match job.state() {
                JobState::Queued => job.set_state(JobState::Cancelled),
                JobState::Running => job.progress.cancel.store(true, Ordering::Relaxed),
                _ => {}
            }
        }
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// `(queued, running, terminal)` job counts, for `stats`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().expect("job queue poisoned");
        let mut c = (0, 0, 0);
        for job in inner.jobs.values() {
            match job.state() {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_pop_finish_lifecycle() {
        let q = JobQueue::new();
        let job = q.submit("work", 100);
        assert_eq!(job.state(), JobState::Queued);
        assert_eq!(q.counts(), (1, 0, 0));
        let (popped, work) = q.pop().unwrap();
        assert_eq!(work, "work");
        assert_eq!(popped.id, job.id);
        assert_eq!(job.state(), JobState::Running);
        popped.progress.on_progress(50, 100);
        assert!((job.fraction() - 0.5).abs() < 1e-9);
        q.finish(&popped, Ok("{}".into()));
        assert_eq!(job.state(), JobState::Done("{}".into()));
        assert_eq!(job.fraction(), 1.0);
        assert_eq!(q.counts(), (0, 0, 1));
    }

    #[test]
    fn cancel_queued_job_is_skipped_by_workers() {
        let q = JobQueue::new();
        let a = q.submit("a", 10);
        let b = q.submit("b", 10);
        assert_eq!(q.cancel(a.id), Some(JobState::Queued));
        assert_eq!(a.state(), JobState::Cancelled);
        // The worker never sees `a`.
        let (popped, _) = q.pop().unwrap();
        assert_eq!(popped.id, b.id);
        assert_eq!(q.cancel(999), None);
    }

    #[test]
    fn cancel_running_job_sets_the_cooperative_flag() {
        let q = JobQueue::new();
        let job = q.submit((), 10);
        let (popped, ()) = q.pop().unwrap();
        assert!(!popped.progress.cancelled());
        q.cancel(job.id);
        assert!(popped.progress.cancelled(), "running cancel must set the tuner flag");
        // The worker observes the flag when the tuner aborts.
        q.finish(&popped, Err("search cancelled".into()));
        assert_eq!(job.state(), JobState::Cancelled);
    }

    #[test]
    fn close_drains_workers_and_cancels_queued_work() {
        let q: Arc<JobQueue<()>> = Arc::new(JobQueue::new());
        let queued = q.submit((), 10);
        q.close();
        assert_eq!(queued.state(), JobState::Cancelled);
        // A blocked worker wakes and exits.
        let q2 = Arc::clone(&q);
        let w = std::thread::spawn(move || q2.pop().is_none());
        assert!(w.join().unwrap());
    }
}
