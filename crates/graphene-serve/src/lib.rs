//! # graphene-serve
//!
//! A persistent compile/lint/tune/run daemon over the Graphene stack —
//! the production-serving shape of the repo's record-once/serve-many
//! thesis. One process keeps every expensive artifact resident and
//! *shared*:
//!
//! - compiled [`KernelPlan`](graphene_sim::KernelPlan)s, keyed by
//!   `(kernel, canonical problem, arch)` ([`state`]),
//! - recorded execution traces ([`graphene_sim::TraceCache`]) and
//!   whole-graph traces ([`graphene_sim::GraphTraceCache`]),
//! - tuning results ([`graphene_tune::SharedTuneDb`]) and candidate
//!   costs ([`graphene_tune::CostCache`]),
//!
//! so the *second* request for any kernel is served from memory: a
//! repeated `run` replays its trace without re-recording, and a
//! repeated `tune` is a `db_hit` with zero simulations.
//!
//! The wire protocol is newline-delimited JSON over TCP ([`proto`]),
//! served std-only by a bounded worker pool ([`server`]) with explicit
//! admission control, queue-wait deadlines, per-command latency
//! histograms ([`metrics`]), an async job queue for long tunes with
//! poll/cancel ([`jobs`]), and graceful drain on `shutdown`/SIGTERM.
//! Request handlers ([`handlers`]) build kernels and search spaces
//! through the same catalogs as the CLI, so responses are
//! bit-identical to one-shot `graphene` runs.
//!
//! ```no_run
//! use graphene_serve::{Server, ServeOptions};
//! let server = Server::bind(ServeOptions::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run());
//! let resp = graphene_serve::client::request(
//!     &addr.to_string(),
//!     r#"{"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}"#,
//!     std::time::Duration::from_secs(60),
//! ).unwrap();
//! assert!(resp.contains("\"ok\":true"));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod handlers;
pub mod jobs;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod state;

pub use jobs::{Job, JobQueue, JobState};
pub use metrics::Metrics;
pub use proto::{parse_request, Obj, Request};
pub use server::{install_signal_handlers, ServeOptions, Server};
pub use state::ServerState;
