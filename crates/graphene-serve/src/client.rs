//! The blocking client: connect, send one JSON line, read one back.
//!
//! [`request`] is the one-shot form the CLI `client` sub-command uses;
//! [`Connection`] keeps the socket open for request streams (the bench
//! harness measures sustained throughput over persistent connections).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A persistent client connection.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects with the given I/O timeout.
    ///
    /// # Errors
    ///
    /// Connection or socket-configuration errors.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection { reader: BufReader::new(stream) })
    }

    /// Sends one request line and reads the one response line.
    ///
    /// # Errors
    ///
    /// I/O errors, timeouts, or the server closing the connection
    /// (reported as `UnexpectedEof` — e.g. after it finished
    /// draining).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(line.trim_end().as_bytes())?;
        stream.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// One-shot request: connect, exchange one line, disconnect.
///
/// # Errors
///
/// As [`Connection::request`].
pub fn request(addr: &str, line: &str, timeout: Duration) -> io::Result<String> {
    Connection::connect(addr, timeout)?.request(line)
}
