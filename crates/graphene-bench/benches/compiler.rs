//! Criterion benchmarks of the Graphene implementation itself: the
//! layout algebra, the index-expression simplifier, IR construction,
//! CUDA code generation, static analysis, and functional simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::{Arch, ScalarType};
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_layout::{coalesce, complement, composition, zipped_divide, Layout};
use graphene_sym::{simplify, IntExpr};
use std::collections::HashMap;

fn bench_layout_algebra(c: &mut Criterion) {
    let a = Layout::row_major(&[128, 128]);
    c.bench_function("layout/zipped_divide_128x128_by_16x8", |b| {
        b.iter(|| {
            zipped_divide(black_box(&a), &[Layout::contiguous(16), Layout::contiguous(8)]).unwrap()
        })
    });
    c.bench_function("layout/composition", |b| {
        let rhs = Layout::column_major(&[64, 256]);
        b.iter(|| composition(black_box(&a), black_box(&rhs)).unwrap())
    });
    c.bench_function("layout/complement", |b| {
        let tile = Layout::strided(8, 4);
        b.iter(|| complement(black_box(&tile), 16384).unwrap())
    });
    c.bench_function("layout/coalesce", |b| {
        let l =
            Layout::new(graphene_layout::it![2, [4, 2], 8], graphene_layout::it![1, [2, 8], 16]);
        b.iter(|| coalesce(black_box(&l)))
    });
}

fn bench_simplifier(c: &mut Criterion) {
    let tid = IntExpr::var_bounded("threadIdx.x", 256);
    let bid = IntExpr::var_bounded("blockIdx.x", 4096);
    let expr = (bid.clone() / 42) * 131072
        + (bid % 42) * 128
        + (tid.clone() / 32) * 8192
        + ((tid.clone() % 32) / 4) * 512
        + (tid.clone() % 4) * 2
        + ((tid.clone() / 16) * 16 + tid.clone() % 16);
    c.bench_function("sym/simplify_gemm_index", |b| b.iter(|| simplify(black_box(&expr))));
}

fn bench_ir_and_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.finish();
    c.bench_function("ir/build_gemm_schedule_sm86", |b| {
        b.iter(|| {
            build_gemm(Arch::Sm86, &GemmConfig::cublas_like(5376, 5376, 2048), Epilogue::BiasRelu)
        })
    });
    let kernel = build_gemm(Arch::Sm86, &GemmConfig::cublas_like(5376, 5376, 2048), Epilogue::None);
    c.bench_function("codegen/gemm_sm86", |b| {
        b.iter(|| graphene_codegen::generate(black_box(&kernel), Arch::Sm86).unwrap())
    });
    c.bench_function("sim/analyze_gemm_sm86", |b| {
        b.iter(|| graphene_sim::analyze(black_box(&kernel), Arch::Sm86).unwrap())
    });
}

fn bench_interpreter(c: &mut Criterion) {
    // A small copy kernel: 4 blocks x 64 threads.
    let mut kb = KernelBuilder::new("copy", &[4], &[64]);
    let src = kb.param("src", &[256], ScalarType::F32);
    let dst = kb.param("dst", &[256], ScalarType::F32);
    let block = kb.block();
    let grid = kb.grid();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].group_coords()[0].clone();
    let idx = bid * 64 + tid;
    let r =
        kb.alloc_reg("r", graphene_ir::TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
    let s = kb.index(src, std::slice::from_ref(&idx));
    let d = kb.index(dst, &[idx]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![ts], vec![s], vec![r]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![ts], vec![r], vec![d]);
    let kernel = kb.build();
    let inputs: HashMap<_, _> =
        [(kernel.params[0], (0..256).map(|i| i as f32).collect::<Vec<_>>())].into();
    c.bench_function("sim/execute_copy_256", |b| {
        b.iter(|| graphene_sim::execute(black_box(&kernel), Arch::Sm86, &inputs).unwrap())
    });
}

criterion_group!(
    benches,
    bench_layout_algebra,
    bench_simplifier,
    bench_ir_and_codegen,
    bench_interpreter
);
criterion_main!(benches);
