//! Criterion benches over the paper-figure harnesses.
//!
//! Each benchmark runs one figure's full pipeline (build the Graphene
//! schedule, statically analyse it, time it and its baselines on the
//! machine model) and, as a side effect of the first iteration, prints
//! the figure's reproduced rows — so `cargo bench` regenerates every
//! table and figure of the paper's evaluation (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use graphene_bench::figures;
use std::sync::Once;

static PRINT: Once = Once::new();

fn print_all_figures() {
    PRINT.call_once(|| {
        println!("\n================ Reproduced paper figures ================\n");
        for r in figures::figure09() {
            println!(
                "Fig 9  {:6} GEMM: graphene {:9.1} us, cuBLAS {:9.1} us, speedup {:.3}x, \
                 compute {:.1}%, mem {:.1}%",
                r.arch.to_string(),
                r.graphene.time_s * 1e6,
                r.cublas.time_s * 1e6,
                r.speedup,
                r.graphene.compute_util * 100.0,
                r.graphene.dram_util * 100.0
            );
        }
        for r in figures::figure10() {
            println!(
                "Fig 10 {:6} {:10}: graphene {:9.1} us, cuBLASLt {:9.1} us, speedup {:.3}x",
                r.arch.to_string(),
                r.epilogue.label(),
                r.graphene.time_s * 1e6,
                r.cublaslt.time_s * 1e6,
                r.speedup
            );
        }
        for r in figures::figure11(4096, &[1, 4, 8, 12, 16, 20]) {
            println!(
                "Fig 11 {:6} L={:2}: fused {:8.1} us, cuBLASLt {:8.1} us, speedup {:.2}x",
                r.arch.to_string(),
                r.layers,
                r.fused_s * 1e6,
                r.cublaslt_s * 1e6,
                r.speedup
            );
        }
        for r in figures::figure12(4096) {
            println!(
                "Fig 12 {:6}: 5-kernel {:7.1} us, 2-kernel {:7.1} us, fused {:7.1} us \
                 ({:.2}x vs 5k, {:.2}x vs 2k)",
                r.arch.to_string(),
                r.unfused_s * 1e6,
                r.two_kernel_s * 1e6,
                r.fused_s * 1e6,
                r.speedup_vs_unfused,
                r.speedup_vs_two_kernel
            );
        }
        for r in figures::figure13(1024, &[16384]) {
            println!("Fig 13 rows={} {:14}: {:8.1} us", r.rows, r.label, r.time_s * 1e6);
        }
        let f = figures::figure14();
        println!(
            "Fig 14 FMHA: unfused {:.1} us, mlperf {:.1} us, graphene {:.1} us \
             ({:.2}x vs unfused, {:.2}x vs mlperf)",
            f.unfused_s * 1e6,
            f.mlperf_s * 1e6,
            f.graphene_s * 1e6,
            f.speedup_vs_unfused,
            f.speedup_vs_mlperf
        );
        for r in figures::figure15() {
            println!(
                "Fig 15 {:12}: PyTorch {:8.2} ms, +FMHA {:8.2} ms, speedup {:.2}x (frac {:.2})",
                r.name, r.baseline_ms, r.graphene_ms, r.speedup, r.fmha_fraction
            );
        }
        println!("\n===========================================================\n");
    });
}

fn bench_figures(c: &mut Criterion) {
    print_all_figures();
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("fig09_gemm_vs_cublas", |b| b.iter(figures::figure09));
    g.bench_function("fig10_gemm_pointwise", |b| b.iter(figures::figure10));
    g.bench_function("fig11_mlp_fusion", |b| b.iter(|| figures::figure11(4096, &[1, 20])));
    g.bench_function("fig12_lstm_fusion", |b| b.iter(|| figures::figure12(4096)));
    g.bench_function("fig13_layernorm", |b| b.iter(|| figures::figure13(1024, &[16384])));
    g.bench_function("fig14_fmha", |b| b.iter(figures::figure14));
    g.bench_function("fig15_transformers", |b| b.iter(figures::figure15));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
