//! Interpreter throughput benchmarks: reference statement-tree
//! interpretation vs compiled-plan execution (sequential and parallel),
//! plus the cost of plan compilation itself and execute-many reuse of
//! one compiled plan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphene_ir::{Arch, Kernel, TensorId};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_sim::{
    execute_plan, execute_reference, execute_with, ExecMode, HostTensor, KernelPlan,
};
use std::collections::HashMap;

fn gemm() -> (Kernel, HashMap<TensorId, Vec<f32>>) {
    let cfg =
        GemmConfig { m: 64, n: 64, k: 32, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[64, 32], 71).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[32, 64], 72).as_slice().to_vec());
    (kernel, inputs)
}

fn fmha() -> (Kernel, HashMap<TensorId, Vec<f32>>) {
    let cfg = FmhaConfig { heads: 2, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[128, 32], 73).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[128, 32], 74).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[128, 32], 75).as_slice().to_vec());
    (kernel, inputs)
}

fn layernorm() -> (Kernel, HashMap<TensorId, Vec<f32>>) {
    let cfg = LayernormConfig::new(16, 256);
    let kernel = build_layernorm(Arch::Sm86, &cfg);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[16, 256], 76).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[256], 77).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[256], 78).as_slice().to_vec());
    (kernel, inputs)
}

fn bench_kernel(
    c: &mut Criterion,
    label: &str,
    kernel: &Kernel,
    inputs: &HashMap<TensorId, Vec<f32>>,
) {
    let bindings = HashMap::new();
    c.bench_function(&format!("interp/{label}/reference"), |b| {
        b.iter(|| execute_reference(black_box(kernel), Arch::Sm86, inputs).unwrap())
    });
    c.bench_function(&format!("interp/{label}/plan_sequential"), |b| {
        b.iter(|| {
            execute_with(black_box(kernel), Arch::Sm86, inputs, &bindings, ExecMode::Sequential)
                .unwrap()
        })
    });
    c.bench_function(&format!("interp/{label}/plan_parallel"), |b| {
        b.iter(|| {
            execute_with(black_box(kernel), Arch::Sm86, inputs, &bindings, ExecMode::Parallel)
                .unwrap()
        })
    });
    c.bench_function(&format!("interp/{label}/plan_compile"), |b| {
        b.iter(|| KernelPlan::compile(black_box(kernel), Arch::Sm86).unwrap())
    });
    let plan = KernelPlan::compile(kernel, Arch::Sm86).unwrap();
    c.bench_function(&format!("interp/{label}/execute_precompiled"), |b| {
        b.iter(|| execute_plan(black_box(&plan), inputs, &bindings, ExecMode::Sequential).unwrap())
    });
}

fn bench_interp(c: &mut Criterion) {
    let (k, i) = gemm();
    bench_kernel(c, "gemm_64x64x32", &k, &i);
    let (k, i) = fmha();
    bench_kernel(c, "fmha_2x64x32", &k, &i);
    let (k, i) = layernorm();
    bench_kernel(c, "layernorm_16x256", &k, &i);
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
