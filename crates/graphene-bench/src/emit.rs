//! The unified BENCH_PR*.json envelope, shared by the per-PR bench
//! binaries so the perf trajectory is machine-comparable across PRs:
//!
//! ```json
//! {
//!   "benchmark": "<name>",
//!   "schema": 1,
//!   "config": { ... knobs the run was taken under ... },
//!   "metrics": { ... measured values, flat or one level nested ... },
//!   "speedups": { ... derived ratios, always x-vs-y named ... }
//! }
//! ```
//!
//! Values are inserted in call order and rendered verbatim, so a
//! binary's output stays stable run-over-run (modulo the measurements
//! themselves). Floats render at 9 decimals like the pre-existing
//! reports; non-finite values render as `null` rather than producing
//! invalid JSON.

use std::fmt::Write as _;

/// Formats an f64 as a JSON number, `null` when non-finite.
pub fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".into()
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One section's ordered key → rendered-JSON-value pairs.
#[derive(Debug, Default)]
struct Section(Vec<(String, String)>);

impl Section {
    fn push(&mut self, key: &str, rendered: String) {
        self.0.push((key.to_string(), rendered));
    }

    fn render(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.0.iter().enumerate() {
            let comma = if i + 1 < self.0.len() { "," } else { "" };
            let _ = writeln!(out, "{inner}\"{}\": {v}{comma}", esc(k));
        }
        let _ = write!(out, "{pad}}}");
        out
    }
}

/// Builder for one unified bench report.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    config: Section,
    metrics: Section,
    speedups: Section,
}

impl BenchReport {
    /// A report named `name` (the `"benchmark"` field).
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            config: Section::default(),
            metrics: Section::default(),
            speedups: Section::default(),
        }
    }

    /// Adds a string config knob.
    #[must_use]
    pub fn config_str(mut self, key: &str, v: &str) -> Self {
        self.config.push(key, format!("\"{}\"", esc(v)));
        self
    }

    /// Adds an integer config knob.
    #[must_use]
    pub fn config_int(mut self, key: &str, v: i64) -> Self {
        self.config.push(key, v.to_string());
        self
    }

    /// Adds a boolean config knob.
    #[must_use]
    pub fn config_bool(mut self, key: &str, v: bool) -> Self {
        self.config.push(key, v.to_string());
        self
    }

    /// Adds a float metric (9 decimals, `null` when non-finite).
    #[must_use]
    pub fn metric(mut self, key: &str, v: f64) -> Self {
        self.metrics.push(key, json_f(v));
        self
    }

    /// Adds an integer metric.
    #[must_use]
    pub fn metric_int(mut self, key: &str, v: i64) -> Self {
        self.metrics.push(key, v.to_string());
        self
    }

    /// Adds a boolean metric.
    #[must_use]
    pub fn metric_bool(mut self, key: &str, v: bool) -> Self {
        self.metrics.push(key, v.to_string());
        self
    }

    /// Adds a pre-rendered JSON value (for one level of nesting, e.g.
    /// a per-concurrency array). The caller owns its validity.
    #[must_use]
    pub fn metric_raw(mut self, key: &str, rendered_json: &str) -> Self {
        self.metrics.push(key, rendered_json.to_string());
        self
    }

    /// Adds a derived speedup ratio; name it `x_vs_y`.
    #[must_use]
    pub fn speedup(mut self, key: &str, ratio: f64) -> Self {
        self.speedups.push(key, json_f(ratio));
        self
    }

    /// Renders the full envelope.
    pub fn render(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"schema\": 1,\n  \"config\": {},\n  \"metrics\": {},\n  \"speedups\": {}\n}}\n",
            esc(&self.name),
            self.config.render(2),
            self.metrics.render(2),
            self.speedups.render(2),
        )
    }

    /// Writes the rendered report to `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors from [`std::fs::write`].
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_unified_envelope_in_insertion_order() {
        let r = BenchReport::new("serve")
            .config_str("mode", "fast")
            .config_int("iters", 5)
            .config_bool("fast_mode", true)
            .metric("cold_run_s", 0.25)
            .metric_int("requests", 100)
            .metric_bool("bit_identical", true)
            .metric_raw("nested", "{\"a\": 1}")
            .speedup("warm_vs_cold", 12.5);
        let s = r.render();
        assert!(s.starts_with("{\n  \"benchmark\": \"serve\",\n  \"schema\": 1,"), "{s}");
        let mode = s.find("\"mode\"").unwrap();
        let iters = s.find("\"iters\"").unwrap();
        assert!(mode < iters, "insertion order lost:\n{s}");
        assert!(s.contains("\"cold_run_s\": 0.250000000"), "{s}");
        assert!(s.contains("\"nested\": {\"a\": 1}"), "{s}");
        assert!(s.contains("\"warm_vs_cold\": 12.500000000"), "{s}");
        // The envelope parses as JSON.
        graphene_tune::json::parse(&s).expect("valid JSON");
    }

    #[test]
    fn non_finite_floats_render_null() {
        let s = BenchReport::new("x").metric("bad", f64::NAN).render();
        assert!(s.contains("\"bad\": null"), "{s}");
        graphene_tune::json::parse(&s).expect("valid JSON");
    }
}
