//! Tabular report rendering shared by the figure binaries.

use std::fmt::Write as _;

/// A simple aligned-column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:w$}", c, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a time in adaptive units.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(0.002), "2.000 ms");
        assert_eq!(fmt_time(35e-6), "35.0 us");
        assert_eq!(fmt_pct(0.875), "87.5%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
