//! Autotuner benchmark: hand-picked defaults vs tuned schedules, and
//! exhaustive vs beam search cost.
//!
//! For the GEMM, FMHA, and layernorm search spaces this runs the
//! `graphene-tune` pipeline twice — once exhaustively and once with the
//! beam hill-climb — and emits `BENCH_PR4.json` with the default
//! schedule's simulated time, each strategy's best simulated time and
//! speedup over the default, the prune/simulate accounting, and the
//! search wall-clock so the beam's evaluation savings are visible next
//! to any quality it gives up.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr4 [--fast] [out.json]`
//! (`--fast` budget-caps both searches — the CI smoke mode).

use graphene_ir::Arch;
use graphene_kernels::gemm::Epilogue;
use graphene_sim::{analyze, machine_for, time_kernel};
use graphene_tune::{
    tune, FmhaSpace, GemmSpace, LayernormSpace, Search, SearchSpace, TuneOptions, TuneReport,
};
use std::time::Instant;

struct BenchCase {
    name: &'static str,
    space: Box<dyn SearchSpace>,
}

struct StrategyResult {
    best_time_s: f64,
    best_desc: String,
    wall_s: f64,
    proposed: usize,
    pruned: usize,
    simulated: usize,
}

struct BenchResult {
    name: &'static str,
    space: String,
    problem: String,
    total_points: usize,
    default_time_s: f64,
    exhaustive: StrategyResult,
    beam: StrategyResult,
}

fn cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "gemm_sm86",
            space: Box::new(GemmSpace::new(Arch::Sm86, 1024, 1024, 512, Epilogue::None)),
        },
        BenchCase { name: "fmha_sm86", space: Box::new(FmhaSpace::new(8, 128, 64)) },
        BenchCase {
            name: "layernorm_sm86",
            space: Box::new(LayernormSpace::new(Arch::Sm86, 4096, 1024)),
        },
    ]
}

/// Simulated time of the space's hand-picked default schedule.
fn default_time(space: &dyn SearchSpace) -> f64 {
    let kernel = space.build(&space.default_point());
    let counters = analyze(&kernel, space.arch()).expect("default schedule analyzes");
    time_kernel(&counters, machine_for(space.arch()), kernel.grid_size()).time_s
}

fn run_strategy(
    space: &dyn SearchSpace,
    search: Search,
    budget: Option<usize>,
) -> (StrategyResult, TuneReport) {
    let opts = TuneOptions { search, budget, ..TuneOptions::default() };
    let start = Instant::now();
    let report = tune(space, &opts, None).expect("search finds a legal schedule");
    let wall_s = start.elapsed().as_secs_f64();
    let s = &report.stats;
    let result = StrategyResult {
        best_time_s: report.best_time_s,
        best_desc: report.best_desc.clone(),
        wall_s,
        proposed: s.proposed,
        pruned: s.pruned_constraint + s.pruned_analysis,
        simulated: s.simulated,
    };
    (result, report)
}

fn run_case(case: &BenchCase, budget: Option<usize>) -> BenchResult {
    let space = case.space.as_ref();
    let default_time_s = default_time(space);
    let (exhaustive, report) = run_strategy(space, Search::Exhaustive, budget);
    let (beam, _) = run_strategy(space, Search::Beam { seed: 7, width: 4, patience: 2 }, budget);
    BenchResult {
        name: case.name,
        space: report.space,
        problem: report.problem,
        total_points: space.total_points(),
        default_time_s,
        exhaustive,
        beam,
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".into()
    }
}

fn strategy_json(s: &mut String, key: &str, default_s: f64, r: &StrategyResult, last: bool) {
    s.push_str(&format!("      \"{key}\": {{\n"));
    s.push_str(&format!("        \"best_time_s\": {},\n", json_f(r.best_time_s)));
    s.push_str(&format!("        \"best_schedule\": \"{}\",\n", r.best_desc));
    s.push_str(&format!(
        "        \"speedup_vs_default\": {},\n",
        json_f(default_s / r.best_time_s)
    ));
    s.push_str(&format!("        \"search_wall_s\": {},\n", json_f(r.wall_s)));
    s.push_str(&format!("        \"proposed\": {},\n", r.proposed));
    s.push_str(&format!("        \"pruned\": {},\n", r.pruned));
    s.push_str(&format!("        \"simulated\": {}\n", r.simulated));
    s.push_str(if last { "      }\n" } else { "      },\n" });
}

fn render_json(results: &[BenchResult], budget: Option<usize>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"autotuner-default-vs-tuned\",\n");
    match budget {
        Some(b) => s.push_str(&format!("  \"simulation_budget\": {b},\n")),
        None => s.push_str("  \"simulation_budget\": null,\n"),
    }
    s.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"space\": \"{}\",\n", r.space));
        s.push_str(&format!("      \"problem\": \"{}\",\n", r.problem));
        s.push_str(&format!("      \"total_points\": {},\n", r.total_points));
        s.push_str(&format!("      \"default_time_s\": {},\n", json_f(r.default_time_s)));
        strategy_json(&mut s, "exhaustive", r.default_time_s, &r.exhaustive, false);
        strategy_json(&mut s, "beam", r.default_time_s, &r.beam, false);
        s.push_str(&format!(
            "      \"beam_wall_speedup\": {},\n",
            json_f(r.exhaustive.wall_s / r.beam.wall_s)
        ));
        s.push_str(&format!(
            "      \"beam_matches_exhaustive\": {}\n",
            r.beam.best_time_s <= r.exhaustive.best_time_s * 1.000001
        ));
        s.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".into());
    // The budget caps *simulated* candidates; the default is always
    // evaluated first, so even the capped smoke run preserves the
    // "tuned never loses to the default" guarantee.
    let budget = if fast { Some(24) } else { None };

    let mut results = Vec::new();
    match budget {
        Some(b) => println!("autotuner benchmark (budget {b} simulations per search)\n"),
        None => println!("autotuner benchmark (unbounded searches)\n"),
    }
    println!(
        "{:<16} {:>7} {:>11} {:>11} {:>8} {:>11} {:>8} {:>9}",
        "kernel", "points", "default", "exhaustive", "speedup", "beam", "speedup", "beam wall"
    );
    for case in cases() {
        let r = run_case(&case, budget);
        println!(
            "{:<16} {:>7} {:>9.2}us {:>9.2}us {:>7.2}x {:>9.2}us {:>7.2}x {:>8.0}ms",
            r.name,
            r.total_points,
            r.default_time_s * 1e6,
            r.exhaustive.best_time_s * 1e6,
            r.default_time_s / r.exhaustive.best_time_s,
            r.beam.best_time_s * 1e6,
            r.default_time_s / r.beam.best_time_s,
            r.beam.wall_s * 1e3,
        );
        assert!(
            r.exhaustive.best_time_s <= r.default_time_s,
            "{}: exhaustive winner lost to the default",
            r.name
        );
        assert!(
            r.beam.best_time_s <= r.default_time_s,
            "{}: beam winner lost to the default",
            r.name
        );
        // A budgeted exhaustive run only sees an enumeration-order
        // prefix of the space, so beam may legitimately beat it there.
        assert!(
            budget.is_some() || r.exhaustive.best_time_s <= r.beam.best_time_s * 1.000001,
            "{}: beam reported a better time than exhaustive",
            r.name
        );
        results.push(r);
    }

    let json = render_json(&results, budget);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("\nwrote {out_path}");
}
