//! Figure 13: Layernorm vs the PyTorch implementation family.
use graphene_bench::figures::figure13_on;
use graphene_bench::report::{fmt_time, Table};
use graphene_ir::Arch;

fn main() {
    for arch in [Arch::Sm70, Arch::Sm86] {
        println!(
            "Figure 13: Layernorm (hidden=1024) vs PyTorch reference implementations ({arch})\n"
        );
        let mut t = Table::new(&["rows", "implementation", "time"]);
        for row in figure13_on(arch, 1024, &[1024, 4096, 16384, 65536]) {
            t.row(vec![row.rows.to_string(), row.label.clone(), fmt_time(row.time_s)]);
        }
        println!("{}", t.render());
    }
}
