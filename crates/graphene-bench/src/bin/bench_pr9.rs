//! PR9 benchmark: the serve daemon's request economics.
//!
//! Measures, against an in-process daemon on an ephemeral port:
//!
//! 1. **Cold vs warm request latency** for `run --exec replay`, `lint`,
//!    and `tune` — the record-once/serve-many contrast the daemon
//!    exists for. The first request compiles/records/searches; repeats
//!    are served from the resident plan/trace/tune caches.
//! 2. **Sustained requests/sec** at several client concurrency levels,
//!    each client issuing warm `run` requests over its own persistent
//!    connection.
//! 3. **Bit-identical outputs**: the daemon's `run` checksum must equal
//!    the one-shot `graphene run` CLI checksum for the same problem.
//!
//! Emits BENCH_PR9.json in the unified `bench_emit` envelope.

use graphene_bench::emit::{json_f, BenchReport};
use graphene_serve::client::Connection;
use graphene_serve::{ServeOptions, Server};
use graphene_tune::json::{parse, Json};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
const RUN_LINE: &str = r#"{"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}"#;

fn field<'j>(v: &'j Json, key: &str) -> &'j Json {
    v.get(key).unwrap_or_else(|| panic!("missing field {key} in {v:?}"))
}

/// One timed request on an open connection; asserts it succeeded.
fn timed(conn: &mut Connection, line: &str) -> (f64, Json) {
    let start = Instant::now();
    let resp = conn.request(line).expect("request");
    let s = start.elapsed().as_secs_f64();
    let v = parse(&resp).expect("response parses");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "request failed: {resp}");
    (s, v)
}

/// Best-of-`iters` warm latency for `line` (the request is already
/// cached server-side when this is called).
fn best_warm(conn: &mut Connection, line: &str, iters: u32) -> f64 {
    (0..iters).map(|_| timed(conn, line).0).fold(f64::INFINITY, f64::min)
}

/// `concurrency` clients, each with its own connection, each issuing
/// `per_client` warm requests; returns aggregate requests/sec.
fn sustained(addr: &str, concurrency: usize, per_client: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut conn = Connection::connect(addr, TIMEOUT).expect("connect");
                for _ in 0..per_client {
                    timed(&mut conn, RUN_LINE);
                }
            });
        }
    });
    (concurrency * per_client) as f64 / start.elapsed().as_secs_f64()
}

/// Checksum of the one-shot CLI `run` for the same problem — the
/// ground truth the daemon must match bit-for-bit.
fn cli_checksum() -> f64 {
    let args: Vec<String> = "run gemm --m 256 --n 256 --k 64 --exec replay"
        .split_whitespace()
        .map(String::from)
        .collect();
    let out = graphene_cli::run(&args).expect("one-shot CLI run");
    out.lines()
        .find_map(|l| l.strip_prefix("checksum : "))
        .expect("CLI checksum line")
        .trim()
        .parse()
        .expect("CLI checksum parses")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".into());
    let warm_iters: u32 = if fast { 3 } else { 10 };
    let per_client: usize = if fast { 20 } else { 100 };
    let levels: &[usize] = if fast { &[1, 4] } else { &[1, 4, 8] };

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_cap: 64,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    let mut conn = Connection::connect(&addr, TIMEOUT).expect("connect");

    // 1. Cold vs warm per request type.
    let (run_cold_s, run_cold) = timed(&mut conn, RUN_LINE);
    let run_warm_s = best_warm(&mut conn, RUN_LINE, warm_iters);
    let run_speedup = run_cold_s / run_warm_s;
    println!(
        "run  : cold {:.3}ms vs warm {:.3}ms ({run_speedup:.1}x)",
        run_cold_s * 1e3,
        run_warm_s * 1e3
    );

    let lint_line = r#"{"cmd":"lint","kernel":"gemm","m":256,"n":256,"k":64}"#;
    let (lint_cold_s, _) = timed(&mut conn, lint_line);
    let lint_warm_s = best_warm(&mut conn, lint_line, warm_iters);
    println!(
        "lint : cold {:.3}ms vs warm {:.3}ms ({:.1}x) — lint re-analyzes, only kernel build amortizes",
        lint_cold_s * 1e3,
        lint_warm_s * 1e3,
        lint_cold_s / lint_warm_s
    );

    let tune_line = r#"{"cmd":"tune","kernel":"layernorm","rows":1024,"hidden":1024}"#;
    let (tune_cold_s, tune_cold) = timed(&mut conn, tune_line);
    let (tune_warm_s, tune_warm) = timed(&mut conn, tune_line);
    let tune_speedup = tune_cold_s / tune_warm_s;
    assert_eq!(field(&tune_cold, "db_hit"), &Json::Bool(false), "first tune must search");
    assert_eq!(field(&tune_warm, "db_hit"), &Json::Bool(true), "repeat tune must db_hit");
    assert_eq!(
        field(field(&tune_warm, "stats"), "simulated").as_i64(),
        Some(0),
        "db_hit tune must simulate nothing"
    );
    println!(
        "tune : cold {:.3}ms vs warm {:.3}ms ({tune_speedup:.1}x, warm is a db_hit)",
        tune_cold_s * 1e3,
        tune_warm_s * 1e3
    );

    // The headline acceptance: warm run latency >= 5x better than cold.
    assert!(
        fast || run_speedup >= 5.0,
        "warm run only {run_speedup:.2}x faster than cold (needs >= 5x)"
    );

    // 2. Bit-identical to the one-shot CLI.
    let daemon_sum = field(&run_cold, "checksum").as_f64().expect("daemon checksum");
    let cli_sum = cli_checksum();
    let bit_identical = daemon_sum.to_bits() == cli_sum.to_bits();
    assert!(bit_identical, "daemon checksum {daemon_sum} != CLI checksum {cli_sum}");
    println!("ident: daemon checksum == one-shot CLI checksum ({daemon_sum})");

    // 3. Sustained warm throughput per concurrency level.
    let mut throughput = Vec::new();
    for &c in levels {
        let rps = sustained(&addr, c, per_client);
        println!("load : {c} client(s) x {per_client} warm runs -> {rps:.0} req/s");
        throughput.push(format!(
            "{{\"clients\": {c}, \"requests\": {}, \"requests_per_sec\": {}}}",
            c * per_client,
            json_f(rps)
        ));
    }

    // Final server-side picture.
    let (_, stats) = timed(&mut conn, r#"{"cmd":"stats"}"#);
    let traces = field(field(&stats, "caches"), "traces");
    let trace_hits = field(traces, "hits").as_i64().unwrap_or(0);
    let recordings = field(traces, "recordings").as_i64().unwrap_or(0);
    println!("state: {trace_hits} trace hits over {recordings} recording(s)");
    assert!(recordings >= 1 && trace_hits > recordings, "cache economics inverted");

    timed(&mut conn, r#"{"cmd":"shutdown"}"#);
    drop(conn);
    handle.join().expect("server thread").expect("server run");

    let report = BenchReport::new("serve")
        .config_str("daemon", "in-process, 8 workers, ephemeral port")
        .config_str("run_request", "gemm m=256 n=256 k=64 exec=replay")
        .config_str("tune_request", "layernorm rows=1024 hidden=1024")
        .config_int("warm_iterations", i64::from(warm_iters))
        .config_int("requests_per_client", per_client as i64)
        .config_bool("fast_mode", fast)
        .metric("run_cold_s", run_cold_s)
        .metric("run_warm_s", run_warm_s)
        .metric("lint_cold_s", lint_cold_s)
        .metric("lint_warm_s", lint_warm_s)
        .metric("tune_cold_s", tune_cold_s)
        .metric("tune_warm_s", tune_warm_s)
        .metric_int("trace_cache_hits", trace_hits)
        .metric_int("trace_recordings", recordings)
        .metric_bool("warm_tune_is_db_hit", true)
        .metric_bool("bit_identical_to_cli", bit_identical)
        .metric_raw("throughput", &format!("[{}]", throughput.join(", ")))
        .speedup("run_warm_vs_cold", run_speedup)
        .speedup("lint_warm_vs_cold", lint_cold_s / lint_warm_s)
        .speedup("tune_warm_vs_cold", tune_speedup);
    report.write(&out_path).expect("write bench report");
    println!("\nwrote {out_path}");
}
