//! Interpreter throughput benchmark: compiled address plans + parallel
//! CTA execution vs the original reference interpreter.
//!
//! Runs the tiled GEMM, FMHA, and layernorm kernels through all three
//! engines — the pre-optimization reference interpreter, sequential
//! plan execution, and parallel plan execution — verifying bit-identical
//! outputs and counters, then emits `BENCH_PR3.json` with per-kernel
//! wall time, throughput (output elements per second), and measured
//! speedups, alongside the timing model's predicted kernel time for the
//! same counters.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr3 [--fast] [out.json]`
//! (`--fast` runs one timing iteration per engine — the CI smoke mode).

use graphene_ir::{Arch, Kernel, TensorId};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_sim::{
    execute_reference, execute_with, machine_for, time_kernel, ExecMode, ExecOutcome, HostTensor,
};
use std::collections::HashMap;
use std::time::Instant;

struct BenchCase {
    name: &'static str,
    kernel: Kernel,
    arch: Arch,
    inputs: HashMap<TensorId, Vec<f32>>,
    /// Output elements produced (throughput denominator).
    elements: u64,
}

struct BenchResult {
    name: &'static str,
    blocks: i64,
    elements: u64,
    reference_s: f64,
    sequential_s: f64,
    parallel_s: f64,
    bit_identical: bool,
    counters_identical: bool,
    flops_tc: u64,
    global_read_bytes: u64,
    smem_transactions: u64,
    modeled_time_s: f64,
}

fn gemm_case() -> BenchCase {
    // 16 independent CTAs of the paper's tiled-GEMM schedule.
    let cfg =
        GemmConfig { m: 128, n: 128, k: 64, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[m, k], 41).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[k, n], 42).as_slice().to_vec());
    BenchCase {
        name: "gemm_tiled_sm86",
        kernel,
        arch: Arch::Sm86,
        inputs,
        elements: (m * n) as u64,
    }
}

fn fmha_case() -> BenchCase {
    let cfg = FmhaConfig { heads: 4, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    let rows = (cfg.heads * cfg.seq) as usize;
    let d = cfg.d as usize;
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, d], 51).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[rows, d], 52).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[rows, d], 53).as_slice().to_vec());
    BenchCase { name: "fmha_sm86", kernel, arch: Arch::Sm86, inputs, elements: (rows * d) as u64 }
}

fn layernorm_case() -> BenchCase {
    let cfg = LayernormConfig::new(64, 256);
    let kernel = build_layernorm(Arch::Sm86, &cfg);
    let (rows, hidden) = (cfg.rows as usize, cfg.hidden as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, hidden], 61).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[hidden], 62).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[hidden], 63).as_slice().to_vec());
    BenchCase {
        name: "layernorm_sm86",
        kernel,
        arch: Arch::Sm86,
        inputs,
        elements: (rows * hidden) as u64,
    }
}

/// Best-of-`iters` wall time of `f`, returning the last outcome.
fn time_best<F: FnMut() -> ExecOutcome>(iters: u32, mut f: F) -> (f64, ExecOutcome) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..iters {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn bits(globals: &HashMap<TensorId, Vec<f32>>) -> Vec<(TensorId, Vec<u32>)> {
    let mut v: Vec<_> =
        globals.iter().map(|(id, buf)| (*id, buf.iter().map(|x| x.to_bits()).collect())).collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

fn run_case(case: &BenchCase, iters: u32) -> BenchResult {
    let BenchCase { name, kernel, arch, inputs, elements } = case;
    let bindings = HashMap::new();
    let (reference_s, ref_out) =
        time_best(iters, || execute_reference(kernel, *arch, inputs).expect("reference"));
    let (sequential_s, seq_out) = time_best(iters, || {
        execute_with(kernel, *arch, inputs, &bindings, ExecMode::Sequential).expect("sequential")
    });
    let (parallel_s, par_out) = time_best(iters, || {
        execute_with(kernel, *arch, inputs, &bindings, ExecMode::Parallel).expect("parallel")
    });
    let bit_identical = bits(&ref_out.globals) == bits(&seq_out.globals)
        && bits(&ref_out.globals) == bits(&par_out.globals);
    let counters_identical =
        ref_out.counters == seq_out.counters && ref_out.counters == par_out.counters;
    let blocks = kernel.grid_size();
    let profile = time_kernel(&ref_out.counters, machine_for(*arch), blocks);
    BenchResult {
        name,
        blocks,
        elements: *elements,
        reference_s,
        sequential_s,
        parallel_s,
        bit_identical,
        counters_identical,
        flops_tc: ref_out.counters.flops_tc,
        global_read_bytes: ref_out.counters.global_read_bytes,
        smem_transactions: ref_out.counters.smem_transactions,
        modeled_time_s: profile.time_s,
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".into()
    }
}

fn render_json(results: &[BenchResult], iters: u32) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"interpreter-throughput\",\n");
    s.push_str(&format!("  \"iterations_per_engine\": {iters},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let tput = |secs: f64| json_f(r.elements as f64 / secs);
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"grid_blocks\": {},\n", r.blocks));
        s.push_str(&format!("      \"output_elements\": {},\n", r.elements));
        s.push_str(&format!("      \"reference_wall_s\": {},\n", json_f(r.reference_s)));
        s.push_str(&format!("      \"sequential_wall_s\": {},\n", json_f(r.sequential_s)));
        s.push_str(&format!("      \"parallel_wall_s\": {},\n", json_f(r.parallel_s)));
        s.push_str(&format!("      \"elements_per_s_reference\": {},\n", tput(r.reference_s)));
        s.push_str(&format!("      \"elements_per_s_sequential\": {},\n", tput(r.sequential_s)));
        s.push_str(&format!("      \"elements_per_s_parallel\": {},\n", tput(r.parallel_s)));
        s.push_str(&format!(
            "      \"speedup_sequential\": {},\n",
            json_f(r.reference_s / r.sequential_s)
        ));
        s.push_str(&format!(
            "      \"speedup_parallel\": {},\n",
            json_f(r.reference_s / r.parallel_s)
        ));
        s.push_str(&format!("      \"bit_identical_outputs\": {},\n", r.bit_identical));
        s.push_str(&format!("      \"identical_counters\": {},\n", r.counters_identical));
        s.push_str("      \"counters\": {\n");
        s.push_str(&format!("        \"flops_tc\": {},\n", r.flops_tc));
        s.push_str(&format!("        \"global_read_bytes\": {},\n", r.global_read_bytes));
        s.push_str(&format!("        \"smem_transactions\": {}\n", r.smem_transactions));
        s.push_str("      },\n");
        s.push_str(&format!("      \"modeled_gpu_time_s\": {}\n", json_f(r.modeled_time_s)));
        s.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR3.json".into());
    let iters: u32 = if fast { 1 } else { 5 };

    let cases = [gemm_case(), fmha_case(), layernorm_case()];
    let mut results = Vec::new();
    println!("interpreter throughput ({iters} timed iterations per engine, best-of)\n");
    println!(
        "{:<16} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9}  identical",
        "kernel", "blocks", "reference", "sequential", "parallel", "seq x", "par x"
    );
    for case in &cases {
        let r = run_case(case, iters);
        println!(
            "{:<16} {:>7} {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>8.1}x {:>8.1}x  {}",
            r.name,
            r.blocks,
            r.reference_s * 1e3,
            r.sequential_s * 1e3,
            r.parallel_s * 1e3,
            r.reference_s / r.sequential_s,
            r.reference_s / r.parallel_s,
            if r.bit_identical && r.counters_identical { "yes" } else { "NO" },
        );
        assert!(r.bit_identical, "{}: outputs diverged between engines", r.name);
        assert!(r.counters_identical, "{}: counters diverged between engines", r.name);
        results.push(r);
    }

    let json = render_json(&results, iters);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("\nwrote {out_path}");
}
