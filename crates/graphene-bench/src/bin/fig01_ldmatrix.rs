//! Figure 1: the ldmatrix data movement — Graphene IR and generated CUDA.
use graphene_codegen::generate;
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, ScalarType};
use graphene_layout::{it, Layout};
use graphene_sym::IntExpr;

fn main() {
    let mut kb = KernelBuilder::new("ldmatrix_move", &[1], &[32]);
    let block = kb.block();
    let smem = kb.alloc_shared("smem", TensorType::row_major(&[16, 16], ScalarType::F16));
    let frag_inner = TensorType::row_major(&[1, 2], ScalarType::F16);
    let frag = TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: graphene_ir::Elem::Tile(Box::new(frag_inner)),
        swizzle: Default::default(),
    };
    let regs = kb.alloc_reg("regs", frag);
    kb.spec_decomposed(SpecKind::Move, vec![block], vec![smem], vec![regs], |kb| {
        let warp = kb.block();
        let grp8 = kb.thread_tile(warp, &Layout::contiguous(8)).unwrap();
        let grps = kb.thread_reshape(grp8, &[2, 2]).unwrap();
        let gcoords = kb.module()[grps].group_coords();
        let glocal = kb.module()[grps].local_coord();
        let tiles = kb.tile_c(smem, &[Some(8), Some(8)]).unwrap();
        let per_grp = kb.index(tiles, &[gcoords[0].clone(), gcoords[1].clone()]);
        let rows = kb.tile_c(per_grp, &[Some(1), None]).unwrap();
        let per_thr = kb.index(rows, &[glocal, IntExpr::zero()]);
        kb.spec(SpecKind::Move, vec![warp], vec![per_thr], vec![regs]);
    });
    let kernel = kb.build();
    println!("=== Graphene IR (paper Figure 1d) ===\n{kernel}");
    println!(
        "=== Generated CUDA C++ (paper Figure 1c) ===\n{}",
        generate(&kernel, Arch::Sm86).expect("Ampere codegen")
    );
    println!(
        "On Volta: {}",
        generate(&kernel, Arch::Sm70).map(|_| "ok".into()).unwrap_or_else(|e| e.to_string())
    );
}
