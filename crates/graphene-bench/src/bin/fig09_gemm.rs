//! Figure 9: Graphene GEMM vs cuBLAS (speedup + achieved throughput).
use graphene_bench::figures::{figure09, paper_gemm_size};
use graphene_bench::report::{fmt_pct, fmt_time, Table};

fn main() {
    println!("Figure 9: Graphene GEMM performance compared against cuBLAS");
    println!("(M=N=5120, K=2048 on Volta; M=N=5376, K=2048 on Ampere; 128x128x32 tiles)\n");
    let mut t =
        Table::new(&["arch", "size", "graphene", "cuBLAS", "speedup", "compute SOL", "mem SOL"]);
    for row in figure09() {
        let (m, n, k) = paper_gemm_size(row.arch);
        t.row(vec![
            row.arch.to_string(),
            format!("{m}x{n}x{k}"),
            fmt_time(row.graphene.time_s),
            fmt_time(row.cublas.time_s),
            format!("{:.3}x", row.speedup),
            fmt_pct(row.graphene.compute_util),
            fmt_pct(row.graphene.dram_util),
        ]);
    }
    println!("{}", t.render());
}
