//! Figure 10: fused GEMM + pointwise epilogues vs cuBLASLt.
use graphene_bench::figures::figure10;
use graphene_bench::report::{fmt_time, Table};

fn main() {
    println!("Figure 10: Graphene vs cuBLASLt for fused GEMM + pointwise kernels\n");
    let mut t = Table::new(&["arch", "epilogue", "graphene", "cuBLASLt", "speedup"]);
    for row in figure10() {
        t.row(vec![
            row.arch.to_string(),
            row.epilogue.label().to_string(),
            fmt_time(row.graphene.time_s),
            fmt_time(row.cublaslt.time_s),
            format!("{:.3}x", row.speedup),
        ]);
    }
    println!("{}", t.render());
}
