//! PR10 benchmark: the trace optimizer.
//!
//! Three measurements, mirroring where descriptor-coalesced replay
//! pays off:
//!
//! 1. **Engines** — the tiled GEMM, FMHA, and layernorm kernels through
//!    the compiled-plan executor (sequential), raw PR 7 trace replay,
//!    and optimized replay of the same recording. The full run must
//!    show optimized replay at least 2x over raw replay on at least
//!    two kernels, with bit-identical outputs and counters everywhere.
//! 2. **Footprint** — per kernel: recorded vs residual addresses
//!    (coalesced fraction), steps fused and fills eliminated, and
//!    resident trace bytes before/after. The affine-dominated
//!    layernorm must shed at least half its resident bytes.
//! 3. **Serving** — warm `run --exec replay` latency and sustained
//!    multi-client throughput against an in-process daemon whose
//!    trace cache now holds optimized traces, next to the raw vs
//!    optimized replay walls for the same served problem.
//!
//! Emits BENCH_PR10.json in the unified `bench_emit` envelope.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr10 [--fast] [out.json]`
//! (`--fast` runs one timing iteration and trims the load test — the
//! CI smoke mode; the 2x and 50% gates only apply to the full run).

use graphene_bench::emit::{json_f, BenchReport};
use graphene_ir::{Arch, Kernel, TensorId};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_serve::client::Connection;
use graphene_serve::{ServeOptions, Server};
use graphene_sim::{
    execute_plan, optimize_trace, record_trace, replay, replay_opt, ExecMode, ExecOutcome,
    HostTensor, KernelPlan,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
const RUN_LINE: &str = r#"{"cmd":"run","kernel":"gemm","m":256,"n":256,"k":64,"exec":"replay"}"#;

struct BenchCase {
    name: &'static str,
    kernel: Kernel,
    arch: Arch,
    inputs: HashMap<TensorId, Vec<f32>>,
}

struct CaseResult {
    name: &'static str,
    plan_s: f64,
    raw_replay_s: f64,
    opt_replay_s: f64,
    optimize_s: f64,
    coalesced: f64,
    bytes_before: usize,
    bytes_after: usize,
    steps_before: usize,
    steps_after: usize,
    dead_fills: usize,
    fused_steps: usize,
    bit_identical: bool,
    counters_identical: bool,
}

fn gemm_case() -> BenchCase {
    // 16 independent CTAs of the paper's tiled-GEMM schedule, in the
    // coalesced (unswizzled) shared-memory layout — the regime the
    // span classifier targets: stride-1 rows the bulk arms can stream.
    let cfg = GemmConfig {
        m: 128,
        n: 128,
        k: 64,
        bm: 32,
        bn: 32,
        bk: 16,
        wm: 16,
        wn: 16,
        swizzle: false,
    };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[m, k], 101).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[k, n], 102).as_slice().to_vec());
    BenchCase { name: "gemm_tiled_sm86", kernel, arch: Arch::Sm86, inputs }
}

fn fmha_case() -> BenchCase {
    let cfg = FmhaConfig { heads: 4, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    let rows = (cfg.heads * cfg.seq) as usize;
    let d = cfg.d as usize;
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, d], 111).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[rows, d], 112).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[rows, d], 113).as_slice().to_vec());
    BenchCase { name: "fmha_sm86", kernel, arch: Arch::Sm86, inputs }
}

fn layernorm_case() -> BenchCase {
    let cfg = LayernormConfig::new(64, 256);
    let kernel = build_layernorm(Arch::Sm86, &cfg);
    let (rows, hidden) = (cfg.rows as usize, cfg.hidden as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, hidden], 121).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[hidden], 122).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[hidden], 123).as_slice().to_vec());
    BenchCase { name: "layernorm_sm86", kernel, arch: Arch::Sm86, inputs }
}

/// Best-of-`iters` wall time of `f`, returning the last outcome.
fn time_best<F: FnMut() -> ExecOutcome>(iters: u32, mut f: F) -> (f64, ExecOutcome) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..iters {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn bits(globals: &HashMap<TensorId, Vec<f32>>) -> Vec<(TensorId, Vec<u32>)> {
    let mut v: Vec<_> =
        globals.iter().map(|(id, buf)| (*id, buf.iter().map(|x| x.to_bits()).collect())).collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

fn run_case(case: &BenchCase, iters: u32) -> CaseResult {
    let BenchCase { name, kernel, arch, inputs } = case;
    let bindings = HashMap::new();
    let plan = KernelPlan::compile(kernel, *arch).expect("plan compiles");
    let raw = record_trace(&plan, &bindings).expect("trace records");
    let opt_start = Instant::now();
    let opt = optimize_trace(&raw);
    let optimize_s = opt_start.elapsed().as_secs_f64();
    let st = *opt.stats();

    let (plan_s, plan_out) = time_best(iters, || {
        execute_plan(&plan, inputs, &bindings, ExecMode::Sequential).expect("plan")
    });
    let (raw_replay_s, raw_out) = time_best(iters, || replay(&raw, inputs).expect("raw replay"));
    let (opt_replay_s, opt_out) = time_best(iters, || replay_opt(&opt, inputs).expect("opt"));

    let bit_identical = bits(&plan_out.globals) == bits(&raw_out.globals)
        && bits(&plan_out.globals) == bits(&opt_out.globals);
    let counters_identical =
        plan_out.counters == raw_out.counters && plan_out.counters == opt_out.counters;
    CaseResult {
        name,
        plan_s,
        raw_replay_s,
        opt_replay_s,
        optimize_s,
        coalesced: st.coalesced_fraction(),
        bytes_before: st.bytes_before,
        bytes_after: st.bytes_after,
        steps_before: st.steps_before,
        steps_after: st.steps_after,
        dead_fills: st.dead_fills,
        fused_steps: st.fused_steps,
        bit_identical,
        counters_identical,
    }
}

/// One timed request on an open connection; asserts it succeeded.
fn timed(conn: &mut Connection, line: &str) -> f64 {
    let start = Instant::now();
    let resp = conn.request(line).expect("request");
    let s = start.elapsed().as_secs_f64();
    let v = graphene_tune::json::parse(&resp).expect("response parses");
    assert_eq!(v.get("ok"), Some(&graphene_tune::json::Json::Bool(true)), "request failed: {resp}");
    s
}

/// `concurrency` clients, each with its own connection, each issuing
/// `per_client` warm requests; returns aggregate requests/sec.
fn sustained(addr: &str, concurrency: usize, per_client: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut conn = Connection::connect(addr, TIMEOUT).expect("connect");
                for _ in 0..per_client {
                    timed(&mut conn, RUN_LINE);
                }
            });
        }
    });
    (concurrency * per_client) as f64 / start.elapsed().as_secs_f64()
}

fn case_json(r: &CaseResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"plan_sequential_wall_s\": {}, \"raw_replay_wall_s\": {}, \
         \"opt_replay_wall_s\": {}, \"optimize_once_wall_s\": {}, \
         \"speedup_opt_vs_raw_replay\": {}, \"speedup_opt_vs_plan\": {}, \
         \"coalesced_fraction\": {}, \"trace_bytes_before\": {}, \"trace_bytes_after\": {}, \
         \"bytes_saved_fraction\": {}, \"steps_before\": {}, \"steps_after\": {}, \
         \"dead_fills\": {}, \"fused_steps\": {}, \"bit_identical_outputs\": {}, \
         \"identical_counters\": {}}}",
        r.name,
        json_f(r.plan_s),
        json_f(r.raw_replay_s),
        json_f(r.opt_replay_s),
        json_f(r.optimize_s),
        json_f(r.raw_replay_s / r.opt_replay_s),
        json_f(r.plan_s / r.opt_replay_s),
        json_f(r.coalesced),
        r.bytes_before,
        r.bytes_after,
        json_f(1.0 - r.bytes_after as f64 / r.bytes_before as f64),
        r.steps_before,
        r.steps_after,
        r.dead_fills,
        r.fused_steps,
        r.bit_identical,
        r.counters_identical,
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".into());
    let iters: u32 = if fast { 1 } else { 5 };
    let warm_iters: u32 = if fast { 3 } else { 10 };
    let per_client: usize = if fast { 20 } else { 100 };

    // 1 + 2. Engines and footprint per kernel.
    let cases = [gemm_case(), fmha_case(), layernorm_case()];
    let mut results = Vec::new();
    println!("optimized trace replay vs raw replay vs plan ({iters} timed iterations, best-of)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>8} {:>10} {:>11}  identical",
        "kernel", "plan(seq)", "raw replay", "opt replay", "opt x", "coalesced", "bytes"
    );
    for case in &cases {
        let r = run_case(case, iters);
        println!(
            "{:<16} {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>7.1}x {:>9.1}% {:>10.1}%  {}",
            r.name,
            r.plan_s * 1e3,
            r.raw_replay_s * 1e3,
            r.opt_replay_s * 1e3,
            r.raw_replay_s / r.opt_replay_s,
            r.coalesced * 100.0,
            (1.0 - r.bytes_after as f64 / r.bytes_before as f64) * 100.0,
            if r.bit_identical && r.counters_identical { "yes" } else { "NO" },
        );
        assert!(r.bit_identical, "{}: outputs diverged between engines", r.name);
        assert!(r.counters_identical, "{}: counters diverged between engines", r.name);
        results.push(r);
    }
    // The headline acceptance: >= 2x over the PR 7 replay engine on at
    // least two kernels (one timing iteration is too noisy to gate on).
    let two_x = results.iter().filter(|r| r.raw_replay_s / r.opt_replay_s >= 2.0).count();
    assert!(
        fast || two_x >= 2,
        "optimized replay cleared 2x on only {two_x} of {} kernels",
        results.len()
    );
    // The affine-dominated kernel must shed at least half its resident
    // trace bytes (this one is deterministic, so it gates --fast too).
    let ln = results.iter().find(|r| r.name == "layernorm_sm86").expect("layernorm case");
    assert!(
        ln.bytes_after * 2 <= ln.bytes_before,
        "layernorm trace only shrank {} -> {} bytes",
        ln.bytes_before,
        ln.bytes_after,
    );

    // 3. Serving from an optimized-trace cache.
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_cap: 64,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    let mut conn = Connection::connect(&addr, TIMEOUT).expect("connect");

    let run_cold_s = timed(&mut conn, RUN_LINE);
    let run_warm_s =
        (0..warm_iters).map(|_| timed(&mut conn, RUN_LINE)).fold(f64::INFINITY, f64::min);
    let rps = sustained(&addr, 4, per_client);
    println!(
        "\nserve: cold {:.3}ms, warm {:.3}ms, 4 clients x {per_client} warm runs -> {rps:.0} req/s",
        run_cold_s * 1e3,
        run_warm_s * 1e3,
    );

    // The raw vs optimized replay walls for the served problem — the
    // per-request engine delta underneath the daemon numbers.
    let served_cfg =
        GemmConfig { m: 256, n: 256, k: 64, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let served = build_gemm(Arch::Sm86, &served_cfg, Epilogue::None);
    let mut served_inputs = HashMap::new();
    served_inputs.insert(served.params[0], HostTensor::random(&[256, 64], 131).as_slice().to_vec());
    served_inputs.insert(served.params[1], HostTensor::random(&[64, 256], 132).as_slice().to_vec());
    let served_plan = KernelPlan::compile(&served, Arch::Sm86).expect("served plan");
    let served_raw = record_trace(&served_plan, &HashMap::new()).expect("served trace");
    let served_opt = optimize_trace(&served_raw);
    let (served_raw_s, _) =
        time_best(iters, || replay(&served_raw, &served_inputs).expect("raw replay"));
    let (served_opt_s, _) =
        time_best(iters, || replay_opt(&served_opt, &served_inputs).expect("opt replay"));
    println!(
        "serve engine: raw replay {:.3}ms vs opt replay {:.3}ms ({:.1}x per request)",
        served_raw_s * 1e3,
        served_opt_s * 1e3,
        served_raw_s / served_opt_s,
    );

    timed(&mut conn, r#"{"cmd":"shutdown"}"#);
    drop(conn);
    handle.join().expect("server thread").expect("server run");

    let kernels: Vec<String> = results.iter().map(case_json).collect();
    let report = BenchReport::new("trace-opt")
        .config_int("iterations_per_engine", i64::from(iters))
        .config_bool("fast_mode", fast)
        .config_str("serve_request", "gemm m=256 n=256 k=64 exec=replay")
        .config_int("serve_clients", 4)
        .config_int("serve_requests_per_client", per_client as i64)
        .metric_raw("kernels", &format!("[{}]", kernels.join(", ")))
        .metric("serve_run_cold_s", run_cold_s)
        .metric("serve_run_warm_s", run_warm_s)
        .metric("serve_warm_requests_per_sec", rps)
        .metric("serve_raw_replay_s", served_raw_s)
        .metric("serve_opt_replay_s", served_opt_s)
        .metric_int("kernels_at_2x_or_better", two_x as i64)
        .speedup("gemm_opt_vs_raw_replay", results[0].raw_replay_s / results[0].opt_replay_s)
        .speedup("fmha_opt_vs_raw_replay", results[1].raw_replay_s / results[1].opt_replay_s)
        .speedup("layernorm_opt_vs_raw_replay", results[2].raw_replay_s / results[2].opt_replay_s)
        .speedup("serve_opt_vs_raw_replay", served_raw_s / served_opt_s);
    report.write(&out_path).expect("write bench report");
    println!("\nwrote {out_path}");
}
