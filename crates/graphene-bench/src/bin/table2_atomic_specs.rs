//! Table 2: the atomic specifications and their PTX instructions.
use graphene_bench::report::Table;
use graphene_ir::atomic::registry;
use graphene_ir::Arch;

fn main() {
    for arch in [Arch::Sm70, Arch::Sm86] {
        println!("Table 2 — atomic specifications for {arch}:\n");
        let mut t = Table::new(&["spec", "threads", "name", "instruction"]);
        for a in registry(arch) {
            t.row(vec![
                a.kind.name(),
                a.exec_local.to_string(),
                a.name.to_string(),
                a.ptx.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
}
