//! Ablation studies: what the optimizations in the Graphene schedules
//! buy, on the simulated Ampere machine.
use graphene_bench::ablations::all;
use graphene_bench::report::{fmt_time, Table};

fn main() {
    println!("Ablations (Ampere, paper-scale GEMM 5376x5376x2048):\n");
    let mut t = Table::new(&["ablation", "optimized", "ablated", "slowdown"]);
    for a in all() {
        t.row(vec![
            a.name.to_string(),
            fmt_time(a.optimized_s),
            fmt_time(a.ablated_s),
            format!("{:.2}x", a.slowdown),
        ]);
    }
    println!("{}", t.render());
    println!("The paper's Section 2 reports up to 17% GEMM slowdown when ldmatrix");
    println!("is replaced with equivalent simpler data movements.");
}
