//! Figure 11: multi-layer MLP fusion vs cumulative cuBLASLt calls.
use graphene_bench::figures::figure11;
use graphene_bench::report::{fmt_time, Table};

fn main() {
    println!("Figure 11: fusing multiple MLP layers (GEMM + bias + ReLU) into one kernel");
    println!("(hidden N=K=128, M=4096, vs per-layer cuBLASLt invocations)\n");
    let mut t = Table::new(&["arch", "layers", "fused", "cuBLASLt xL", "speedup"]);
    for row in figure11(4096, &[1, 2, 4, 8, 12, 16, 20]) {
        t.row(vec![
            row.arch.to_string(),
            row.layers.to_string(),
            fmt_time(row.fused_s),
            fmt_time(row.cublaslt_s),
            format!("{:.2}x", row.speedup),
        ]);
    }
    println!("{}", t.render());
}
