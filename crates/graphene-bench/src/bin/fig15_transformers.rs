//! Figure 15: end-to-end Transformer inference with injected FMHA.
use graphene_bench::figures::figure15;
use graphene_bench::report::{fmt_pct, Table};

fn main() {
    println!("Figure 15: injecting Graphene FMHA kernels into Transformer networks (Ampere)\n");
    let mut t = Table::new(&["network", "PyTorch", "w/ Graphene FMHA", "speedup", "FMHA fraction"]);
    for row in figure15() {
        t.row(vec![
            row.name.to_string(),
            format!("{:.2} ms", row.baseline_ms),
            format!("{:.2} ms", row.graphene_ms),
            format!("{:.2}x", row.speedup),
            fmt_pct(row.fmha_fraction),
        ]);
    }
    println!("{}", t.render());
}
