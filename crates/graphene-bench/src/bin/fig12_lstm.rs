//! Figure 12: the fused LSTM cell vs CUDA library lowerings.
use graphene_bench::figures::figure12;
use graphene_bench::report::{fmt_time, Table};

fn main() {
    println!("Figure 12: fused LSTM cell (relu(X*Wx + H*Wh + bias)), M=4096, hidden=128\n");
    let mut t = Table::new(&[
        "arch",
        "5-kernel (cuBLAS+cuDNN)",
        "2-kernel (cuBLASLt)",
        "Graphene fused",
        "speedup vs 5k",
        "speedup vs 2k",
    ]);
    for row in figure12(4096) {
        t.row(vec![
            row.arch.to_string(),
            fmt_time(row.unfused_s),
            fmt_time(row.two_kernel_s),
            fmt_time(row.fused_s),
            format!("{:.2}x", row.speedup_vs_unfused),
            format!("{:.2}x", row.speedup_vs_two_kernel),
        ]);
    }
    println!("{}", t.render());
}
