//! Trace-capture + replay benchmark.
//!
//! Two halves, mirroring where record-once/replay-many pays off:
//!
//! 1. **Engines** — the tiled GEMM, FMHA, and layernorm kernels run
//!    through the reference interpreter, the compiled-plan executor
//!    (sequential, plan precompiled outside the timed region), and
//!    trace replay. The one-time recording cost is reported
//!    separately; replayed outputs must stay bit-identical and replay
//!    must beat the compiled-plan executor by at least `3x`.
//! 2. **Tuner** — the exhaustive `m1024 n1024 k512` Sm86 GEMM tune of
//!    `BENCH_PR6.json` runs cold with a `CostCache` recording every
//!    candidate pipeline outcome, then warm with every outcome
//!    replayed: zero fresh simulations, identical winner, and the
//!    warm wall-clock shows what re-tuning costs once recordings
//!    exist. The PR 6 reference winner is embedded so a schedule
//!    regression is caught here, not downstream.
//!
//! Emits BENCH_PR7.json in the unified `bench_emit` envelope.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr7 [--fast] [out.json]`
//! (`--fast` runs one timing iteration and budget-caps the tune — the
//! CI smoke mode; the 3x and winner assertions only apply to the full
//! run).

use graphene_bench::emit::{json_f, BenchReport};
use graphene_ir::{Arch, Kernel, TensorId};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_sim::{
    execute_plan, execute_reference, record_trace, replay, ExecMode, ExecOutcome, HostTensor,
    KernelPlan,
};
use graphene_tune::{tuner::run_search_cached, CostCache, GemmSpace, Search, TuneOptions};
use std::collections::HashMap;
use std::time::Instant;

/// The exhaustive winner BENCH_PR6.json recorded for this problem; the
/// full run asserts the replay-costed tune still finds it.
const PR6_PROBLEM: (i64, i64, i64) = (1024, 1024, 512);
const PR6_WINNER: &str = "bm=128 bn=128 bk=16 wm=64 wn=64 stages=1";
const PR6_WALL_S: f64 = 33.590326043;

struct BenchCase {
    name: &'static str,
    kernel: Kernel,
    arch: Arch,
    inputs: HashMap<TensorId, Vec<f32>>,
}

struct EngineResult {
    name: &'static str,
    blocks: i64,
    steps: usize,
    addrs: usize,
    record_s: f64,
    reference_s: f64,
    plan_s: f64,
    replay_s: f64,
    bit_identical: bool,
    counters_identical: bool,
}

fn gemm_case() -> BenchCase {
    // 16 independent CTAs of the paper's tiled-GEMM schedule.
    let cfg =
        GemmConfig { m: 128, n: 128, k: 64, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[m, k], 71).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[k, n], 72).as_slice().to_vec());
    BenchCase { name: "gemm_tiled_sm86", kernel, arch: Arch::Sm86, inputs }
}

fn fmha_case() -> BenchCase {
    let cfg = FmhaConfig { heads: 4, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    let rows = (cfg.heads * cfg.seq) as usize;
    let d = cfg.d as usize;
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, d], 81).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[rows, d], 82).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[rows, d], 83).as_slice().to_vec());
    BenchCase { name: "fmha_sm86", kernel, arch: Arch::Sm86, inputs }
}

fn layernorm_case() -> BenchCase {
    let cfg = LayernormConfig::new(64, 256);
    let kernel = build_layernorm(Arch::Sm86, &cfg);
    let (rows, hidden) = (cfg.rows as usize, cfg.hidden as usize);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, hidden], 91).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[hidden], 92).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[hidden], 93).as_slice().to_vec());
    BenchCase { name: "layernorm_sm86", kernel, arch: Arch::Sm86, inputs }
}

/// Best-of-`iters` wall time of `f`, returning the last outcome.
fn time_best<F: FnMut() -> ExecOutcome>(iters: u32, mut f: F) -> (f64, ExecOutcome) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..iters {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn bits(globals: &HashMap<TensorId, Vec<f32>>) -> Vec<(TensorId, Vec<u32>)> {
    let mut v: Vec<_> =
        globals.iter().map(|(id, buf)| (*id, buf.iter().map(|x| x.to_bits()).collect())).collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

fn run_case(case: &BenchCase, iters: u32) -> EngineResult {
    let BenchCase { name, kernel, arch, inputs } = case;
    let bindings = HashMap::new();
    // Plan compilation and trace recording are both one-time costs:
    // hold them outside the per-execution timed regions.
    let plan = KernelPlan::compile(kernel, *arch).expect("plan compiles");
    let record_start = Instant::now();
    let trace = record_trace(&plan, &bindings).expect("trace records");
    let record_s = record_start.elapsed().as_secs_f64();

    let (reference_s, ref_out) =
        time_best(iters, || execute_reference(kernel, *arch, inputs).expect("reference"));
    let (plan_s, plan_out) = time_best(iters, || {
        execute_plan(&plan, inputs, &bindings, ExecMode::Sequential).expect("plan")
    });
    let (replay_s, replay_out) = time_best(iters, || replay(&trace, inputs).expect("replay"));

    let bit_identical = bits(&ref_out.globals) == bits(&plan_out.globals)
        && bits(&ref_out.globals) == bits(&replay_out.globals);
    let counters_identical =
        ref_out.counters == plan_out.counters && ref_out.counters == replay_out.counters;
    EngineResult {
        name,
        blocks: kernel.grid_size(),
        steps: trace.num_steps(),
        addrs: trace.num_addrs(),
        record_s,
        reference_s,
        plan_s,
        replay_s,
        bit_identical,
        counters_identical,
    }
}

struct TuneResult {
    total_points: usize,
    best_desc: String,
    best_time_s: f64,
    cold_wall_s: f64,
    warm_wall_s: f64,
    cold_simulated: usize,
    warm_simulated: usize,
    warm_replayed: usize,
    recordings: u64,
    same_winner: bool,
}

fn run_tune(budget: Option<usize>) -> TuneResult {
    let (m, n, k) = PR6_PROBLEM;
    let space = GemmSpace::new(Arch::Sm86, m, n, k, Epilogue::None);
    let opts = TuneOptions { search: Search::Exhaustive, budget, ..TuneOptions::default() };
    let costs = CostCache::new();

    let start = Instant::now();
    let cold = run_search_cached(&space, &opts, Some(&costs)).expect("cold tune");
    let cold_wall_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let warm = run_search_cached(&space, &opts, Some(&costs)).expect("warm tune");
    let warm_wall_s = start.elapsed().as_secs_f64();

    assert_eq!(warm.best_point, cold.best_point, "replay-costed tune changed the winner");
    // Replays are budget-free, so a *budgeted* warm run advances past
    // the cold run's enumeration prefix and legitimately simulates
    // fresh points; only the exhaustive search replays everything.
    if budget.is_none() {
        assert_eq!(warm.stats.simulated, 0, "warm exhaustive tune must not simulate");
    }
    TuneResult {
        total_points: graphene_tune::SearchSpace::total_points(&space),
        best_desc: cold.best_desc,
        best_time_s: cold.best_time_s,
        cold_wall_s,
        warm_wall_s,
        cold_simulated: cold.stats.simulated,
        warm_simulated: warm.stats.simulated,
        warm_replayed: warm.stats.cost_replayed,
        recordings: costs.recordings(),
        same_winner: warm.best_point == cold.best_point,
    }
}

/// One kernel's engine comparison as a nested JSON object for the
/// unified envelope's `kernels` array.
fn kernel_json(r: &EngineResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"grid_blocks\": {}, \"trace_steps\": {}, \
         \"trace_addresses\": {}, \"record_once_wall_s\": {}, \"reference_wall_s\": {}, \
         \"plan_sequential_wall_s\": {}, \"replay_wall_s\": {}, \
         \"speedup_replay_vs_plan\": {}, \"speedup_replay_vs_reference\": {}, \
         \"bit_identical_outputs\": {}, \"identical_counters\": {}}}",
        r.name,
        r.blocks,
        r.steps,
        r.addrs,
        json_f(r.record_s),
        json_f(r.reference_s),
        json_f(r.plan_s),
        json_f(r.replay_s),
        json_f(r.plan_s / r.replay_s),
        json_f(r.reference_s / r.replay_s),
        r.bit_identical,
        r.counters_identical,
    )
}

fn render_report(
    results: &[EngineResult],
    tune: &TuneResult,
    iters: u32,
    fast: bool,
) -> BenchReport {
    let (m, n, k) = PR6_PROBLEM;
    let kernels: Vec<String> = results.iter().map(kernel_json).collect();
    let tuner = format!(
        "{{\"problem\": \"gemm_sm86 m{m} n{n} k{k}\", \"total_points\": {}, \
         \"best_schedule\": \"{}\", \"best_time_s\": {}, \"cold_wall_s\": {}, \
         \"warm_wall_s\": {}, \"warm_speedup\": {}, \"cold_simulated\": {}, \
         \"warm_simulated\": {}, \"warm_replayed\": {}, \"cost_recordings\": {}, \
         \"same_winner_cold_warm\": {}, \"pr6_reference_winner\": \"{PR6_WINNER}\", \
         \"pr6_reference_wall_s\": {}}}",
        tune.total_points,
        tune.best_desc,
        json_f(tune.best_time_s),
        json_f(tune.cold_wall_s),
        json_f(tune.warm_wall_s),
        json_f(tune.cold_wall_s / tune.warm_wall_s),
        tune.cold_simulated,
        tune.warm_simulated,
        tune.warm_replayed,
        tune.recordings,
        tune.same_winner,
        json_f(PR6_WALL_S),
    );
    BenchReport::new("trace-replay")
        .config_int("iterations_per_engine", i64::from(iters))
        .config_bool("fast_mode", fast)
        .config_str("tune_problem", &format!("gemm_sm86 m{m} n{n} k{k}"))
        .metric_raw("kernels", &format!("[{}]", kernels.join(", ")))
        .metric_raw("tuner", &tuner)
        .speedup("tune_warm_vs_cold", tune.cold_wall_s / tune.warm_wall_s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".into());
    let iters: u32 = if fast { 1 } else { 5 };
    let budget = if fast { Some(24) } else { None };

    let cases = [gemm_case(), fmha_case(), layernorm_case()];
    let mut results = Vec::new();
    println!("trace replay vs compiled-plan executor ({iters} timed iterations, best-of)\n");
    println!(
        "{:<16} {:>7} {:>8} {:>12} {:>12} {:>12} {:>9}  identical",
        "kernel", "blocks", "steps", "reference", "plan(seq)", "replay", "replay x"
    );
    for case in &cases {
        let r = run_case(case, iters);
        println!(
            "{:<16} {:>7} {:>8} {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>8.1}x  {}",
            r.name,
            r.blocks,
            r.steps,
            r.reference_s * 1e3,
            r.plan_s * 1e3,
            r.replay_s * 1e3,
            r.plan_s / r.replay_s,
            if r.bit_identical && r.counters_identical { "yes" } else { "NO" },
        );
        assert!(r.bit_identical, "{}: outputs diverged between engines", r.name);
        assert!(r.counters_identical, "{}: counters diverged between engines", r.name);
        // One timing iteration is too noisy to gate on; the full run
        // must clear the 3x bar on every kernel.
        assert!(
            fast || r.plan_s / r.replay_s >= 3.0,
            "{}: replay only {:.2}x faster than the compiled-plan executor",
            r.name,
            r.plan_s / r.replay_s,
        );
        results.push(r);
    }

    match budget {
        Some(b) => println!("\nreplay-costed exhaustive GEMM tune (budget {b} sims)"),
        None => println!("\nreplay-costed exhaustive GEMM tune"),
    }
    let tune = run_tune(budget);
    println!(
        "cold {:.2}s ({} simulated) -> warm {:.2}s ({} replayed, {} simulated), {:.0}x",
        tune.cold_wall_s,
        tune.cold_simulated,
        tune.warm_wall_s,
        tune.warm_replayed,
        tune.warm_simulated,
        tune.cold_wall_s / tune.warm_wall_s,
    );
    println!("winner: {} ({:.3}us)", tune.best_desc, tune.best_time_s * 1e6);
    // A budgeted smoke run sees a different enumeration prefix, so the
    // PR 6 winner check only applies to the full search.
    assert!(
        fast || tune.best_desc == PR6_WINNER,
        "exhaustive winner changed: {} (PR 6 found {PR6_WINNER})",
        tune.best_desc,
    );
    // A budgeted warm run does *more* work than its cold run (replays
    // are budget-free, so it reaches deeper into the enumeration);
    // only the exhaustive warm run is a pure replay and must win.
    assert!(
        fast || tune.warm_wall_s < tune.cold_wall_s,
        "warm tune ({:.2}s) not faster than cold ({:.2}s)",
        tune.warm_wall_s,
        tune.cold_wall_s,
    );

    let report = render_report(&results, &tune, iters, fast);
    report.write(&out_path).expect("write bench report");
    println!("\nwrote {out_path}");
}
