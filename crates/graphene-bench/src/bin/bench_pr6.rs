//! Proof-pruned vs swizzle-searched GEMM tuning.
//!
//! PR 4's `GemmSpace` searched shared-memory swizzling as a seventh
//! axis (1728 points); the F₂ prover now decides swizzling per
//! candidate inside `build()`, halving the space to 864 points and
//! replacing per-candidate conflict simulation with one rank check.
//! This benchmark reconstructs the old 7-axis space locally (swizzle
//! as a searched `0/1` parameter, no proof in the builder) and runs
//! the same exhaustive tune over both, emitting `BENCH_PR6.json` with
//! each space's size, winner, prune/simulate accounting, and search
//! wall-clock — so the cost of searching what can be proven is visible
//! next to the (identical) schedule quality.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr6 [--fast] [out.json]`
//! (`--fast` budget-caps both searches — the CI smoke mode).

use graphene_ir::{Arch, Kernel};
use graphene_kernels::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use graphene_tune::{tune, GemmSpace, ParamDef, Point, Search, SearchSpace, TuneOptions};
use std::time::Instant;

/// The PR 4 GEMM space: swizzling as a searched axis, no proof in the
/// builder. Kept here (not in `graphene-tune`) because its only
/// remaining use is this comparison.
struct LegacyGemmSpace {
    arch: Arch,
    m: i64,
    n: i64,
    k: i64,
    epilogue: Epilogue,
    params: Vec<ParamDef>,
}

impl LegacyGemmSpace {
    fn new(arch: Arch, m: i64, n: i64, k: i64, epilogue: Epilogue) -> Self {
        let bks: Vec<i64> = match arch {
            Arch::Sm86 => vec![16, 32, 64],
            Arch::Sm70 => vec![8, 16, 32],
        };
        let params = vec![
            ParamDef { name: "bm", values: vec![32, 64, 128, 256] },
            ParamDef { name: "bn", values: vec![32, 64, 128, 256] },
            ParamDef { name: "bk", values: bks },
            ParamDef { name: "wm", values: vec![16, 32, 64] },
            ParamDef { name: "wn", values: vec![16, 32, 64] },
            ParamDef { name: "swizzle", values: vec![0, 1] },
            ParamDef { name: "stages", values: vec![1, 2] },
        ];
        LegacyGemmSpace { arch, m, n, k, epilogue, params }
    }

    fn config(&self, p: &Point) -> GemmConfig {
        GemmConfig {
            m: self.m,
            n: self.n,
            k: self.k,
            bm: self.get(p, "bm"),
            bn: self.get(p, "bn"),
            bk: self.get(p, "bk"),
            wm: self.get(p, "wm"),
            wn: self.get(p, "wn"),
            swizzle: self.get(p, "swizzle") != 0,
        }
    }
}

impl SearchSpace for LegacyGemmSpace {
    fn name(&self) -> &'static str {
        "gemm-legacy"
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn params(&self) -> &[ParamDef] {
        &self.params
    }

    fn problem_key(&self) -> String {
        format!("m{}_n{}_k{}_{}", self.m, self.n, self.k, self.epilogue.label())
    }

    fn default_point(&self) -> Point {
        let d = GemmConfig::cublas_like(self.m, self.n, self.k);
        Point(vec![d.bm, d.bn, d.bk, d.wm, d.wn, d.swizzle as i64, 1])
    }

    fn constraint(&self, p: &Point) -> Result<(), String> {
        let cfg = self.config(p);
        cfg.validate(self.arch)?;
        if self.get(p, "stages") == 2 {
            if self.arch != Arch::Sm86 {
                return Err("double-buffered pipeline requires cp.async (Ampere)".into());
            }
            let need = 2 * cfg.smem_bytes();
            let limit = self.arch.smem_limit_bytes();
            if need > limit {
                return Err(format!(
                    "shared-memory budget: {need} B double-buffered stages exceed {limit} B"
                ));
            }
        }
        Ok(())
    }

    fn build(&self, p: &Point) -> Kernel {
        let cfg = self.config(p);
        if self.get(p, "stages") == 2 {
            build_gemm_double_buffered(&cfg, self.epilogue)
        } else {
            build_gemm(self.arch, &cfg, self.epilogue)
        }
    }
}

struct SpaceResult {
    space: &'static str,
    total_points: usize,
    best_time_s: f64,
    best_desc: String,
    wall_s: f64,
    proposed: usize,
    pruned: usize,
    simulated: usize,
    conflict_warnings: usize,
}

fn run_space(space: &dyn SearchSpace, label: &'static str, budget: Option<usize>) -> SpaceResult {
    let opts = TuneOptions { search: Search::Exhaustive, budget, ..TuneOptions::default() };
    let start = Instant::now();
    let report = tune(space, &opts, None).expect("search finds a legal schedule");
    let wall_s = start.elapsed().as_secs_f64();
    let s = &report.stats;
    SpaceResult {
        space: label,
        total_points: space.total_points(),
        best_time_s: report.best_time_s,
        best_desc: report.best_desc.clone(),
        wall_s,
        proposed: s.proposed,
        pruned: s.pruned_constraint + s.pruned_analysis,
        simulated: s.simulated,
        conflict_warnings: report.leaderboard.first().map_or(0, |c| c.conflict_warnings),
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".into()
    }
}

fn space_json(s: &mut String, key: &str, r: &SpaceResult, last: bool) {
    s.push_str(&format!("  \"{key}\": {{\n"));
    s.push_str(&format!("    \"space\": \"{}\",\n", r.space));
    s.push_str(&format!("    \"total_points\": {},\n", r.total_points));
    s.push_str(&format!("    \"best_time_s\": {},\n", json_f(r.best_time_s)));
    s.push_str(&format!("    \"best_schedule\": \"{}\",\n", r.best_desc));
    s.push_str(&format!("    \"search_wall_s\": {},\n", json_f(r.wall_s)));
    s.push_str(&format!("    \"proposed\": {},\n", r.proposed));
    s.push_str(&format!("    \"pruned\": {},\n", r.pruned));
    s.push_str(&format!("    \"simulated\": {},\n", r.simulated));
    s.push_str(&format!("    \"winner_conflict_warnings\": {}\n", r.conflict_warnings));
    s.push_str(if last { "  }\n" } else { "  },\n" });
}

fn render_json(
    problem: &str,
    proved: &SpaceResult,
    legacy: &SpaceResult,
    budget: Option<usize>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"proof-pruned-vs-swizzle-searched\",\n");
    s.push_str(&format!("  \"problem\": \"{problem}\",\n"));
    match budget {
        Some(b) => s.push_str(&format!("  \"simulation_budget\": {b},\n")),
        None => s.push_str("  \"simulation_budget\": null,\n"),
    }
    s.push_str(&format!(
        "  \"space_reduction\": {},\n",
        json_f(legacy.total_points as f64 / proved.total_points as f64)
    ));
    s.push_str(&format!("  \"wall_speedup\": {},\n", json_f(legacy.wall_s / proved.wall_s)));
    s.push_str(&format!(
        "  \"same_quality\": {},\n",
        proved.best_time_s <= legacy.best_time_s * 1.000001
    ));
    space_json(&mut s, "proof_pruned", proved, false);
    space_json(&mut s, "swizzle_searched", legacy, true);
    s.push('}');
    s.push('\n');
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".into());
    // Cap *simulated* candidates in the smoke mode; the legacy budget
    // is doubled so both searches see the same bm/bn/bk/wm/wn prefix
    // of the enumeration (the legacy space interleaves swizzle=0/1).
    let (proved_budget, legacy_budget) = if fast { (Some(24), Some(48)) } else { (None, None) };

    let (m, n, k) = (1024, 1024, 512);
    let proved_space = GemmSpace::new(Arch::Sm86, m, n, k, Epilogue::None);
    let legacy_space = LegacyGemmSpace::new(Arch::Sm86, m, n, k, Epilogue::None);

    match proved_budget {
        Some(b) => println!("proof-pruned vs swizzle-searched tune (budget {b}/{} sims)\n", 2 * b),
        None => println!("proof-pruned vs swizzle-searched tune (exhaustive)\n"),
    }
    let proved = run_space(&proved_space, "proof_pruned", proved_budget);
    let legacy = run_space(&legacy_space, "swizzle_searched", legacy_budget);

    println!(
        "{:<18} {:>7} {:>11} {:>10} {:>10} {:>10}",
        "space", "points", "best", "simulated", "pruned", "wall"
    );
    for r in [&proved, &legacy] {
        println!(
            "{:<18} {:>7} {:>9.2}us {:>10} {:>10} {:>8.0}ms",
            r.space,
            r.total_points,
            r.best_time_s * 1e6,
            r.simulated,
            r.pruned,
            r.wall_s * 1e3,
        );
    }
    println!(
        "\nspace reduction {:.2}x, wall speedup {:.2}x",
        legacy.total_points as f64 / proved.total_points as f64,
        legacy.wall_s / proved.wall_s,
    );

    // The proof-driven builder must never lose schedule quality to the
    // explicit swizzle search: for every config the prover picks the
    // conflict-free variant the search would have found by simulation.
    // (A budgeted smoke run sees different enumeration prefixes, so
    // only assert on the full search.)
    assert!(
        fast || proved.best_time_s <= legacy.best_time_s * 1.000001,
        "proof-pruned winner ({:.3}us) lost to swizzle-searched ({:.3}us)",
        proved.best_time_s * 1e6,
        legacy.best_time_s * 1e6,
    );
    assert_eq!(proved.conflict_warnings, 0, "proof-pruned winner has conflict warnings");

    let json = render_json(&format!("gemm_sm86 m{m} n{n} k{k}"), &proved, &legacy, proved_budget);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("\nwrote {out_path}");
}
