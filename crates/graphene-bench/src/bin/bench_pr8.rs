//! Whole-graph execution benchmark: arena planning + graph replay.
//!
//! Three measurements on a transformer encoder lowered to an
//! executable kernel sequence:
//!
//! 1. **Workspace** — the liveness-planned arena vs naive per-tensor
//!    allocation of every intermediate. The full run must save at
//!    least 30% of peak workspace bytes.
//! 2. **Engines** — the fused encoder through the compiled-plan graph
//!    executor vs whole-graph trace replay (record-once cost reported
//!    separately). Outputs and counters must stay bit-identical and
//!    the full run's replay must beat the plan engine by at least 3x.
//! 3. **Lowerings** — fused epilogues vs one-kernel-per-node, both as
//!    the roofline-modeled time (the paper's Figure 15 pipeline) and
//!    as executed wall time, with a bitwise output cross-check.
//!
//! Emits BENCH_PR8.json in the unified `bench_emit` envelope.
//!
//! Usage: `cargo run --release -p graphene-bench --bin bench_pr8 [--fast] [out.json]`
//! (`--fast` shrinks the encoder and runs one timing iteration — the
//! CI smoke mode; the 3x and 30% gates only apply to the full run).

use graphene_bench::emit::{json_f, BenchReport};
use graphene_ir::Arch;
use graphene_kernels::exec_lower::{lower_executable, ExecLowering};
use graphene_kernels::graph::{encoder_graph, lower_fused, lower_unfused, Graph};
use graphene_sim::{
    execute_graph, record_graph, replay_graph, ExecGraph, ExecMode, GraphOutcome, HostTensor,
    TraceCache,
};
use std::collections::HashMap;
use std::time::Instant;

struct Shape {
    layers: i64,
    batch: i64,
    seq: i64,
    hidden: i64,
    heads: i64,
    ffn: i64,
}

impl Shape {
    fn for_mode(fast: bool) -> Self {
        if fast {
            Shape { layers: 1, batch: 1, seq: 64, hidden: 256, heads: 4, ffn: 256 }
        } else {
            Shape { layers: 2, batch: 1, seq: 128, hidden: 256, heads: 4, ffn: 1024 }
        }
    }

    fn graph(&self) -> Graph {
        encoder_graph(self.layers, self.batch, self.seq, self.hidden, self.heads, self.ffn)
    }
}

/// Best-of-`iters` wall time of `f`, returning the last outcome.
fn time_best<T, F: FnMut() -> T>(iters: u32, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..iters {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Deterministic inputs for every external the graph binds. Both
/// lowerings name externals by the original op index, so one map
/// drives both.
fn random_inputs(g: &ExecGraph) -> HashMap<String, Vec<f32>> {
    g.externals()
        .iter()
        .enumerate()
        .map(|(i, (name, len))| {
            (name.clone(), HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec())
        })
        .collect()
}

/// Output values as bits, in temp order. Temp indices differ across
/// lowerings, so only the values are compared.
fn bits(out: &GraphOutcome) -> Vec<Vec<u32>> {
    let mut v: Vec<(usize, Vec<u32>)> =
        out.outputs.iter().map(|(t, xs)| (*t, xs.iter().map(|x| x.to_bits()).collect())).collect();
    v.sort_by_key(|(t, _)| *t);
    v.into_iter().map(|(_, b)| b).collect()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".into());
    let iters: u32 = if fast { 1 } else { 5 };
    let arch = Arch::Sm86;

    let shape = Shape::for_mode(fast);
    let graph = shape.graph();
    let fused = lower_executable(&graph, arch, ExecLowering::Fused).expect("fused lowers");
    let default = lower_executable(&graph, arch, ExecLowering::Default).expect("default lowers");
    let inputs = random_inputs(&fused);

    println!(
        "encoder: {} layer(s), batch {} x seq {} x hidden {}, {} heads, ffn {} ({iters} timed iterations, best-of)\n",
        shape.layers, shape.batch, shape.seq, shape.hidden, shape.heads, shape.ffn
    );

    // 1. Workspace planning: liveness-aliased arena vs naive.
    let ws = fused.workspace();
    let saving = ws.saving();
    println!(
        "workspace: {} B arena vs {} B naive ({:.1}% saved, {} intermediates)",
        ws.arena_bytes(),
        ws.naive_bytes(),
        saving * 100.0,
        fused.temps.len(),
    );
    assert!(fast || saving >= 0.30, "arena saves only {:.1}% (needs >= 30%)", saving * 100.0);

    // 2. Plan engine vs whole-graph replay on the fused lowering.
    let (plan_s, plan_out) = time_best(iters, || {
        execute_graph(&fused, &inputs, ExecMode::Sequential).expect("plan engine")
    });
    let traces = TraceCache::new();
    let record_start = Instant::now();
    let gt = record_graph(&fused, &traces).expect("graph records");
    let record_s = record_start.elapsed().as_secs_f64();
    let (replay_s, replay_out) = time_best(iters, || {
        replay_graph(&gt, &inputs, ExecMode::Sequential).expect("graph replay")
    });
    let speedup = plan_s / replay_s;
    let bit_identical = bits(&plan_out) == bits(&replay_out);
    let counters_identical = plan_out.counters == replay_out.counters;
    println!(
        "engines  : plan {:.3}ms vs replay {:.3}ms ({speedup:.1}x, recorded once in {:.3}ms, {} kernels / {} distinct recordings)",
        plan_s * 1e3,
        replay_s * 1e3,
        record_s * 1e3,
        gt.num_kernels(),
        traces.recordings(),
    );
    assert!(bit_identical, "replay diverged bitwise from the plan engine");
    assert!(counters_identical, "replay counters diverged from the plan engine");
    assert!(fast || speedup >= 3.0, "graph replay only {speedup:.2}x faster than the plan engine");

    // 3. Fused vs default lowering: modeled and executed.
    let modeled_fused_s = lower_fused(&graph, arch).time_s(arch);
    let modeled_default_s = lower_unfused(&graph).time_s(arch);
    let (default_s, default_out) = time_best(iters, || {
        execute_graph(&default, &inputs, ExecMode::Sequential).expect("default engine")
    });
    let lowerings_identical = bits(&plan_out) == bits(&default_out);
    println!(
        "lowering : fused {} launches / default {} launches; modeled {:.3}us vs {:.3}us; executed {:.3}ms vs {:.3}ms",
        fused.nodes.len(),
        default.nodes.len(),
        modeled_fused_s * 1e6,
        modeled_default_s * 1e6,
        plan_s * 1e3,
        default_s * 1e3,
    );
    assert!(lowerings_identical, "fused and default lowerings diverged bitwise");
    assert!(modeled_fused_s < modeled_default_s, "fusion must win on the machine model");

    let workspace = format!(
        "{{\"intermediates\": {}, \"arena_bytes\": {}, \"naive_bytes\": {}, \
         \"saving_fraction\": {}}}",
        fused.temps.len(),
        ws.arena_bytes(),
        ws.naive_bytes(),
        json_f(saving),
    );
    let engines = format!(
        "{{\"kernel_launches\": {}, \"distinct_recordings\": {}, \"trace_cache_hits\": {}, \
         \"record_once_wall_s\": {}, \"plan_sequential_wall_s\": {}, \"replay_wall_s\": {}, \
         \"speedup_replay_vs_plan\": {}, \"bit_identical_outputs\": {bit_identical}, \
         \"identical_counters\": {counters_identical}}}",
        gt.num_kernels(),
        traces.recordings(),
        traces.hits(),
        json_f(record_s),
        json_f(plan_s),
        json_f(replay_s),
        json_f(speedup),
    );
    let lowerings = format!(
        "{{\"fused_launches\": {}, \"default_launches\": {}, \"modeled_fused_s\": {}, \
         \"modeled_default_s\": {}, \"executed_fused_wall_s\": {}, \
         \"executed_default_wall_s\": {}, \"bit_identical_outputs\": {lowerings_identical}}}",
        fused.nodes.len(),
        default.nodes.len(),
        json_f(modeled_fused_s),
        json_f(modeled_default_s),
        json_f(plan_s),
        json_f(default_s),
    );
    let report = BenchReport::new("graph-exec")
        .config_int("iterations_per_engine", i64::from(iters))
        .config_bool("fast_mode", fast)
        .config_str(
            "encoder",
            &format!(
                "layers={} batch={} seq={} hidden={} heads={} ffn={}",
                shape.layers, shape.batch, shape.seq, shape.hidden, shape.heads, shape.ffn
            ),
        )
        .metric_raw("workspace", &workspace)
        .metric_raw("engines", &engines)
        .metric_raw("lowerings", &lowerings)
        .speedup("replay_vs_plan", speedup)
        .speedup("modeled_fused_vs_default", modeled_default_s / modeled_fused_s);
    report.write(&out_path).expect("write bench report");
    println!("\nwrote {out_path}");
}
