//! Figure 8: the simplest complete GEMM decomposition, IR + CUDA.
use graphene_codegen::generate;
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::{Arch, ScalarType};
use graphene_sym::IntExpr;

fn main() {
    let mut kb = KernelBuilder::new("graphene_kernel", &[8, 8], &[16, 16]);
    let a = kb.param("A", &[1024, 1024], ScalarType::F16);
    let b = kb.param("B", &[1024, 1024], ScalarType::F16);
    let c = kb.param("C", &[1024, 1024], ScalarType::F16);
    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let tids = kb.module()[block].group_coords();
    let a_blk = kb.tile_c(a, &[Some(128), None]).unwrap();
    let b_blk = kb.tile_c(b, &[None, Some(128)]).unwrap();
    let c_blk = kb.tile_c(c, &[Some(128), Some(128)]).unwrap();
    let a_v = kb.index(a_blk, &[bids[0].clone(), IntExpr::zero()]);
    let b_v = kb.index(b_blk, &[IntExpr::zero(), bids[1].clone()]);
    let c_v = kb.index(c_blk, &[bids[0].clone(), bids[1].clone()]);
    let a_t = kb.tile_c(a_v, &[Some(8), None]).unwrap();
    let b_t = kb.tile_c(b_v, &[None, Some(8)]).unwrap();
    let c_t = kb.tile_c(c_v, &[Some(8), Some(8)]).unwrap();
    let a_tv = kb.index(a_t, &[tids[0].clone(), IntExpr::zero()]);
    let b_tv = kb.index(b_t, &[IntExpr::zero(), tids[1].clone()]);
    let c_tv = kb.index(c_t, &[tids[0].clone(), tids[1].clone()]);
    kb.for_loop("k", 1024, true, |kb, k| {
        kb.for_loop("m", 8, true, |kb, m| {
            kb.for_loop("n", 8, true, |kb, n| {
                let a_s = kb.index(a_tv, &[m.clone(), k.clone()]);
                let b_s = kb.index(b_tv, &[k.clone(), n.clone()]);
                let c_s = kb.index(c_tv, &[m.clone(), n.clone()]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::MatMul, vec![ts], vec![a_s, b_s], vec![c_s]);
            });
        });
    });
    let kernel = kb.build();
    println!("=== Graphene IR (paper Figure 8 top) ===\n{kernel}");
    println!(
        "=== Generated CUDA C++ (paper Figure 8 bottom) ===\n{}",
        generate(&kernel, Arch::Sm86).expect("codegen")
    );
}
