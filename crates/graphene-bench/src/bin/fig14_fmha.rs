//! Figure 14: fused multi-head attention at the MLPerf BERT shape.
use graphene_bench::figures::figure14;
use graphene_bench::report::fmt_time;

fn main() {
    println!("Figure 14: FMHA (16 heads, batch 32, d=64, seqlen 384) on Ampere\n");
    let f = figure14();
    println!("  unfused (2x cuBLAS + softmax kernel): {}", fmt_time(f.unfused_s));
    println!("  MLPerf-style fused kernel:            {}", fmt_time(f.mlperf_s));
    println!("  Graphene fused kernel:                {}", fmt_time(f.graphene_s));
    println!();
    println!("  speedup vs unfused baseline: {:.2}x", f.speedup_vs_unfused);
    println!("  speedup vs MLPerf kernels:   {:.2}x", f.speedup_vs_mlperf);
}
