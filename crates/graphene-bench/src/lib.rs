//! # graphene-bench
//!
//! The experiment harness reproducing the paper's evaluation (§6):
//! one function (and one binary) per table/figure. See `EXPERIMENTS.md`
//! at the repository root for the recorded paper-vs-measured outcomes.

#![warn(missing_docs)]

pub mod ablations;
pub mod emit;
pub mod figures;
pub mod report;
