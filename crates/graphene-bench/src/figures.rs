//! Per-figure experiment harnesses.
//!
//! One function per table/figure of the paper's evaluation (§6). Each
//! builds the Graphene schedule(s), statically analyses them on the
//! simulated machine, times the library baselines on the *same* machine
//! model, and returns the rows the paper's plot reports. The binaries in
//! `src/bin/` print them; `EXPERIMENTS.md` records paper-vs-measured.

use graphene_ir::Arch;
use graphene_kernels::fmha::FmhaConfig;
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_kernels::lstm::{build_fused_lstm, LstmConfig};
use graphene_kernels::mlp::{build_fused_mlp, MlpConfig};
use graphene_kernels::reference::{
    cublas_gemm, cublaslt_gemm_accumulate, cublaslt_gemm_epilogue, cudnn_pointwise, mlperf_fmha,
    pytorch_layernorm, unfused_fmha, LayernormImpl,
};
use graphene_kernels::transformer::{figure15_rows, NetworkSpeedup};
use graphene_sim::{analyze, machine_for, time_kernel, time_sequence, KernelProfile};

/// The paper's GEMM evaluation size per architecture (footnote 1).
pub fn paper_gemm_size(arch: Arch) -> (i64, i64, i64) {
    match arch {
        Arch::Sm70 => (5120, 5120, 2048),
        Arch::Sm86 => (5376, 5376, 2048),
    }
}

/// Analyses a Graphene kernel and times it on its architecture's machine.
pub fn profile_kernel(kernel: &graphene_ir::Kernel, arch: Arch) -> KernelProfile {
    let counters = analyze(kernel, arch).expect("kernel analyzes");
    time_kernel(&counters, machine_for(arch), kernel.grid_size())
}

/// One architecture's row of Figure 9.
#[derive(Debug, Clone)]
pub struct GemmRow {
    /// Architecture.
    pub arch: Arch,
    /// Graphene kernel profile.
    pub graphene: KernelProfile,
    /// cuBLAS model profile.
    pub cublas: KernelProfile,
    /// Graphene speedup over cuBLAS (1.0 = parity).
    pub speedup: f64,
}

/// Figure 9: Graphene GEMM vs cuBLAS on Volta and Ampere, with
/// achieved compute/memory throughput percentages.
pub fn figure09() -> Vec<GemmRow> {
    [Arch::Sm70, Arch::Sm86]
        .into_iter()
        .map(|arch| {
            let (m, n, k) = paper_gemm_size(arch);
            let kernel = build_gemm(arch, &GemmConfig::cublas_like(m, n, k), Epilogue::None);
            let graphene = profile_kernel(&kernel, arch);
            let cublas = cublas_gemm(m, n, k).profile(machine_for(arch));
            GemmRow { arch, graphene, cublas, speedup: cublas.time_s / graphene.time_s }
        })
        .collect()
}

/// One (architecture, epilogue) row of Figure 10.
#[derive(Debug, Clone)]
pub struct EpilogueRow {
    /// Architecture.
    pub arch: Arch,
    /// Epilogue variant.
    pub epilogue: Epilogue,
    /// Graphene profile.
    pub graphene: KernelProfile,
    /// cuBLASLt model profile.
    pub cublaslt: KernelProfile,
    /// Speedup (1.0 = parity).
    pub speedup: f64,
}

/// Figure 10: fused GEMM + pointwise epilogues vs cuBLASLt.
pub fn figure10() -> Vec<EpilogueRow> {
    let mut rows = Vec::new();
    for arch in [Arch::Sm70, Arch::Sm86] {
        let (m, n, k) = paper_gemm_size(arch);
        for epilogue in [Epilogue::Bias, Epilogue::Relu, Epilogue::BiasRelu] {
            let kernel = build_gemm(arch, &GemmConfig::cublas_like(m, n, k), epilogue);
            let graphene = profile_kernel(&kernel, arch);
            let lt = cublaslt_gemm_epilogue(
                m,
                n,
                k,
                epilogue.has_bias(),
                epilogue.activation().is_some(),
            )
            .profile(machine_for(arch));
            rows.push(EpilogueRow {
                arch,
                epilogue,
                graphene,
                cublaslt: lt,
                speedup: lt.time_s / graphene.time_s,
            });
        }
    }
    rows
}

/// One (architecture, layer-count) row of Figure 11.
#[derive(Debug, Clone)]
pub struct MlpRow {
    /// Architecture.
    pub arch: Arch,
    /// Fused layer count.
    pub layers: i64,
    /// Fused Graphene kernel time, seconds.
    pub fused_s: f64,
    /// Cumulative cuBLASLt time, seconds.
    pub cublaslt_s: f64,
    /// Fusion speedup.
    pub speedup: f64,
}

/// Figure 11: multi-layer MLP fusion vs per-layer cuBLASLt calls.
pub fn figure11(m: i64, layer_counts: &[i64]) -> Vec<MlpRow> {
    let mut rows = Vec::new();
    for arch in [Arch::Sm70, Arch::Sm86] {
        let machine = machine_for(arch);
        for &layers in layer_counts {
            let cfg = MlpConfig::paper(m, layers);
            let kernel = build_fused_mlp(arch, &cfg);
            let fused = profile_kernel(&kernel, arch);
            let one_layer = cublaslt_gemm_epilogue(m, 128, 128, true, true).profile(machine);
            let unfused: f64 = time_sequence(&vec![one_layer; layers as usize]);
            rows.push(MlpRow {
                arch,
                layers,
                fused_s: fused.time_s,
                cublaslt_s: unfused,
                speedup: unfused / fused.time_s,
            });
        }
    }
    rows
}

/// One architecture's rows of Figure 12.
#[derive(Debug, Clone)]
pub struct LstmRow {
    /// Architecture.
    pub arch: Arch,
    /// 5-kernel cuBLAS + cuDNN baseline, seconds.
    pub unfused_s: f64,
    /// 2-kernel cuBLASLt lowering, seconds.
    pub two_kernel_s: f64,
    /// Fully fused Graphene kernel, seconds.
    pub fused_s: f64,
    /// Speedup of fused over the 5-kernel baseline.
    pub speedup_vs_unfused: f64,
    /// Speedup of fused over the 2-kernel lowering.
    pub speedup_vs_two_kernel: f64,
}

/// Figure 12: the fused LSTM cell vs library lowerings.
pub fn figure12(m: i64) -> Vec<LstmRow> {
    let h = 128;
    [Arch::Sm70, Arch::Sm86]
        .into_iter()
        .map(|arch| {
            let machine = machine_for(arch);
            // (1) One kernel per dataflow node: 2 GEMMs + add + bias + relu.
            let unfused = time_sequence(&[
                cublas_gemm(m, h, h).profile(machine),
                cublas_gemm(m, h, h).profile(machine),
                cudnn_pointwise(m, h, 2, "add").profile(machine),
                cudnn_pointwise(m, h, 2, "bias").profile(machine),
                cudnn_pointwise(m, h, 1, "relu").profile(machine),
            ]);
            // (2) cuBLASLt: GEMM, then GEMM accumulating + bias + relu.
            let two_kernel = time_sequence(&[
                cublas_gemm(m, h, h).profile(machine),
                cublaslt_gemm_accumulate(m, h, h, true, true).profile(machine),
            ]);
            // (3) Graphene: everything in one kernel.
            let kernel = build_fused_lstm(arch, &LstmConfig::paper(m));
            let fused = profile_kernel(&kernel, arch).time_s;
            LstmRow {
                arch,
                unfused_s: unfused,
                two_kernel_s: two_kernel,
                fused_s: fused,
                speedup_vs_unfused: unfused / fused,
                speedup_vs_two_kernel: two_kernel / fused,
            }
        })
        .collect()
}

/// One (rows, implementation) entry of Figure 13.
#[derive(Debug, Clone)]
pub struct LayernormRow {
    /// Problem rows (batch × sequence).
    pub rows: i64,
    /// Implementation label.
    pub label: String,
    /// Time, seconds.
    pub time_s: f64,
}

/// Figure 13: Layernorm vs the PyTorch implementation family (Ampere).
pub fn figure13(hidden: i64, row_counts: &[i64]) -> Vec<LayernormRow> {
    figure13_on(Arch::Sm86, hidden, row_counts)
}

/// [`figure13`] on an explicit architecture (the schedule itself is
/// architecture-independent; only the machine model changes).
pub fn figure13_on(arch: Arch, hidden: i64, row_counts: &[i64]) -> Vec<LayernormRow> {
    let machine = machine_for(arch);
    let mut out = Vec::new();
    for &rows in row_counts {
        for imp in
            [LayernormImpl::Eager, LayernormImpl::Jit, LayernormImpl::Fused, LayernormImpl::Apex]
        {
            let t = time_sequence(
                &pytorch_layernorm(rows, hidden, imp)
                    .iter()
                    .map(|k| k.profile(machine))
                    .collect::<Vec<_>>(),
            );
            out.push(LayernormRow { rows, label: imp.label().to_string(), time_s: t });
        }
        let kernel = build_layernorm(arch, &LayernormConfig::new(rows, hidden));
        let t = profile_kernel(&kernel, arch).time_s;
        out.push(LayernormRow { rows, label: "Graphene".to_string(), time_s: t });
    }
    out
}

/// The Figure 14 comparison.
#[derive(Debug, Clone)]
pub struct FmhaRows {
    /// Unfused baseline (2 cuBLAS GEMMs + softmax kernel), seconds.
    pub unfused_s: f64,
    /// MLPerf-style fused kernel model, seconds.
    pub mlperf_s: f64,
    /// Graphene fused kernel, seconds.
    pub graphene_s: f64,
    /// Graphene speedup over the unfused baseline.
    pub speedup_vs_unfused: f64,
    /// Graphene speedup over the MLPerf-style kernel.
    pub speedup_vs_mlperf: f64,
}

/// Figure 14: FMHA at the MLPerf BERT shape (Ampere).
pub fn figure14() -> FmhaRows {
    let arch = Arch::Sm86;
    let machine = machine_for(arch);
    let cfg = FmhaConfig::mlperf_bert();
    let unfused = time_sequence(
        &unfused_fmha(cfg.heads, cfg.seq, cfg.d)
            .iter()
            .map(|k| k.profile(machine))
            .collect::<Vec<_>>(),
    );
    let mlperf = mlperf_fmha(cfg.heads, cfg.seq, cfg.d).profile(machine).time_s;
    let graphene = graphene_kernels::transformer::fused_fmha_profile(&cfg, machine).time_s;
    FmhaRows {
        unfused_s: unfused,
        mlperf_s: mlperf,
        graphene_s: graphene,
        speedup_vs_unfused: unfused / graphene,
        speedup_vs_mlperf: mlperf / graphene,
    }
}

/// Figure 15: end-to-end Transformer inference speedups.
pub fn figure15() -> Vec<NetworkSpeedup> {
    figure15_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure09_parity_with_cublas() {
        for row in figure09() {
            assert!(
                row.speedup > 0.9 && row.speedup < 1.15,
                "{}: speedup {}",
                row.arch,
                row.speedup
            );
            // Compute-bound with high utilisation (paper: Tensor Cores at
            // maximum capacity, memory well below peak).
            assert!(row.graphene.compute_util > 0.75, "{}", row.graphene.compute_util);
            assert!(row.graphene.dram_util < 0.6, "{}", row.graphene.dram_util);
        }
    }

    #[test]
    fn figure11_fusion_wins_and_grows() {
        let rows = figure11(4096, &[1, 4, 12, 20]);
        for arch in [Arch::Sm70, Arch::Sm86] {
            let arch_rows: Vec<&MlpRow> = rows.iter().filter(|r| r.arch == arch).collect();
            // Speedup grows with layer count.
            for pair in arch_rows.windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup * 0.95,
                    "{arch}: L{} {} -> L{} {}",
                    pair[0].layers,
                    pair[0].speedup,
                    pair[1].layers,
                    pair[1].speedup
                );
            }
            let max = arch_rows.last().unwrap().speedup;
            assert!(max > 1.5, "{arch}: max fusion speedup {max}");
        }
    }

    #[test]
    fn figure12_fusion_beats_both_lowerings() {
        for row in figure12(4096) {
            assert!(row.speedup_vs_unfused > 1.3, "{}: {}", row.arch, row.speedup_vs_unfused);
            assert!(row.speedup_vs_two_kernel > 1.0, "{}: {}", row.arch, row.speedup_vs_two_kernel);
            assert!(row.two_kernel_s < row.unfused_s);
        }
    }

    #[test]
    fn figure13_graphene_matches_best() {
        let rows = figure13(1024, &[16384]);
        let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap().time_s;
        let graphene = get("Graphene");
        let apex = get("NVIDIA Apex");
        let eager = get("PyTorch Eager");
        assert!(graphene <= apex * 1.1, "graphene {graphene} vs apex {apex}");
        assert!(eager > graphene * 1.5, "eager {eager} vs graphene {graphene}");
    }

    #[test]
    fn figure14_fused_wins() {
        let f = figure14();
        assert!(f.speedup_vs_unfused > 1.5, "{}", f.speedup_vs_unfused);
        assert!(f.speedup_vs_mlperf > 1.0 && f.speedup_vs_mlperf < 1.5, "{}", f.speedup_vs_mlperf);
    }
}
