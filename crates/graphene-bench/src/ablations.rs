//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! - **`ldmatrix` vs scalar loads** — the paper's §2 claims replacing
//!   `ldmatrix` with "equivalent but simpler data movements" costs up to
//!   17% of GEMM performance.
//! - **Shared-memory swizzles on/off** — the §3.2 motivation for
//!   hierarchical layouts: unswizzled stages serialise on bank
//!   conflicts.
//! - **Vectorised vs narrow staging** — the value of the `v4.u32`-class
//!   moves in Table 2.

use graphene_ir::Arch;
use graphene_kernels::gemm::{build_gemm, build_gemm_no_ldmatrix, Epilogue, GemmConfig};
use graphene_sim::{analyze, machine_for, time_kernel};

/// Result of one ablation comparison.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What was ablated.
    pub name: &'static str,
    /// Baseline (optimized) time, seconds.
    pub optimized_s: f64,
    /// Ablated time, seconds.
    pub ablated_s: f64,
    /// Slowdown factor of the ablation (>1 means the optimization pays).
    pub slowdown: f64,
}

fn profile(kernel: &graphene_ir::Kernel) -> f64 {
    let c = analyze(kernel, Arch::Sm86).expect("analyzes");
    time_kernel(&c, machine_for(Arch::Sm86), kernel.grid_size()).time_s
}

/// §2: replacing `ldmatrix` with scalar shared-memory loads.
pub fn ldmatrix_ablation() -> Ablation {
    let cfg = GemmConfig::cublas_like(5376, 5376, 2048);
    let with = profile(&build_gemm(Arch::Sm86, &cfg, Epilogue::None));
    let without = profile(&build_gemm_no_ldmatrix(&cfg, Epilogue::None));
    Ablation {
        name: "ldmatrix -> scalar ld.shared",
        optimized_s: with,
        ablated_s: without,
        slowdown: without / with,
    }
}

/// §3.2: disabling the shared-memory swizzle.
pub fn swizzle_ablation() -> Ablation {
    let swz = GemmConfig::cublas_like(5376, 5376, 2048);
    let plain = GemmConfig { swizzle: false, ..swz };
    let with = profile(&build_gemm(Arch::Sm86, &swz, Epilogue::None));
    let without = profile(&build_gemm(Arch::Sm86, &plain, Epilogue::None));
    Ablation {
        name: "swizzled -> row-major shared stage",
        optimized_s: with,
        ablated_s: without,
        slowdown: without / with,
    }
}

/// All ablations.
pub fn all() -> Vec<Ablation> {
    vec![ldmatrix_ablation(), swizzle_ablation()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldmatrix_pays_like_the_paper_says() {
        let a = ldmatrix_ablation();
        // Paper §2: "performance drops by as much as 17%" — our model
        // should show a noticeable (>5%) but not absurd (<2x) slowdown.
        assert!(a.slowdown > 1.05 && a.slowdown < 2.0, "ldmatrix ablation slowdown {}", a.slowdown);
    }

    #[test]
    fn swizzle_pays() {
        let a = swizzle_ablation();
        assert!(a.slowdown >= 1.0, "swizzle ablation slowdown {}", a.slowdown);
    }
}
