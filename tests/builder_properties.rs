//! Property tests of the builder + IR invariants: view offsets stay
//! root-relative and simplified, tiling round-trips address every
//! element exactly once, and thread tilings always produce coordinate
//! bijections.

use graphene::ir::builder::KernelBuilder;
use graphene::ir::dtype::ScalarType;
use graphene::ir::tensor::TensorType;
use graphene::ir::threads::{ThreadLevel, ThreadTensor};
use graphene::layout::Layout;
use graphene::sym::IntExpr;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Random 2-D dims with a divisor tile per dimension.
fn dims_and_tiles() -> impl Strategy<Value = ((i64, i64), (i64, i64))> {
    ((1i64..=4, 1i64..=4), (1i64..=4, 1i64..=4))
        .prop_map(|((tm, tn), (gm, gn))| ((tm * gm, tn * gn), (tm, tn)))
}

proptest! {
    /// Tiling then indexing every (tile, element) coordinate touches each
    /// source element exactly once, with offsets matching row-major
    /// arithmetic.
    #[test]
    fn tile_index_partition(((m, n), (tm, tn)) in dims_and_tiles()) {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let a = kb.param("A", &[m, n], ScalarType::F32);
        let tiled = kb.tile_c(a, &[Some(tm), Some(tn)]).unwrap();
        let mut seen: HashSet<i64> = HashSet::new();
        let env: HashMap<String, i64> = HashMap::new();
        for bi in 0..(m / tm) {
            for bj in 0..(n / tn) {
                let view = kb.index(tiled, &[IntExpr::constant(bi), IntExpr::constant(bj)]);
                let base = kb.module()[view].offset.eval(&env).unwrap();
                let offs = graphene::sim::exec::rel_offsets(&kb.module()[view].ty);
                for o in offs {
                    prop_assert!(seen.insert(base + o), "duplicate address {}", base + o);
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, m * n);
        let max = seen.into_iter().max().unwrap();
        prop_assert_eq!(max, m * n - 1);
    }

    /// Nested tiling (tiles of tiles) still partitions.
    #[test]
    fn nested_tile_partition(outer in 1i64..=3, inner in 1i64..=3, reps in 1i64..=3) {
        let n = outer * inner * reps;
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let a = kb.param("A", &[n, 4], ScalarType::F32);
        let t1 = kb.tile_c(a, &[Some(outer * inner), None]).unwrap();
        let env: HashMap<String, i64> = HashMap::new();
        let mut seen = HashSet::new();
        for r in 0..reps {
            let big = kb.index(t1, &[IntExpr::constant(r), IntExpr::zero()]);
            // tile the big tile again
            let t2 = kb.tile_c(big, &[Some(inner), None]).unwrap();
            for o in 0..outer {
                let small = kb.index(t2, &[IntExpr::constant(o), IntExpr::zero()]);
                let base = kb.module()[small].offset.eval(&env).unwrap();
                for rel in graphene::sim::exec::rel_offsets(&kb.module()[small].ty) {
                    prop_assert!(seen.insert(base + rel));
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, n * 4);
    }

    /// Any divisor tiling of a warp gives a (group, local) bijection.
    #[test]
    fn thread_tiling_bijection(group_sz in 1usize..=5, stride_pow in 0u32..=2) {
        let sizes = [1i64, 2, 4, 8, 16, 32];
        let g = sizes[group_sz];
        let stride = 1i64 << stride_pow;
        if g * stride > 32 {
            return Ok(());
        }
        let tiler = Layout::strided(g, stride);
        let warp = ThreadTensor::new("w", ThreadLevel::Thread, &[32]);
        let Ok(tt) = warp.tile("t", &tiler) else { return Ok(()) };
        let gexprs = tt.group_coords();
        let lexpr = tt.local_coord();
        let mut seen = HashSet::new();
        for t in 0..32 {
            let env: HashMap<String, i64> = [("threadIdx.x".to_string(), t)].into();
            let gc: Vec<i64> = gexprs.iter().map(|e| e.eval(&env).unwrap()).collect();
            let lc = lexpr.eval(&env).unwrap();
            prop_assert!(lc >= 0 && lc < tt.group_size());
            prop_assert!(seen.insert((gc, lc)), "thread {t} collides");
        }
        prop_assert_eq!(seen.len(), 32);
    }

    /// View offsets are always root-relative: chaining views composes
    /// offsets additively.
    #[test]
    fn view_offsets_compose(o1 in 0i64..16, o2 in 0i64..16) {
        let mut kb = KernelBuilder::new("k", &[1], &[32]);
        let root = kb.param("A", &[64], ScalarType::F32);
        let v1 = kb.view_as(
            root,
            TensorType::scalar(Layout::contiguous(32), ScalarType::F32),
            IntExpr::constant(o1),
        );
        let v2 = kb.view_as(
            v1,
            TensorType::scalar(Layout::contiguous(8), ScalarType::F32),
            IntExpr::constant(o2),
        );
        prop_assert_eq!(kb.module().root_of(v2), root);
        prop_assert_eq!(kb.module()[v2].offset.as_const(), Some(o1 + o2));
    }
}
