//! Property-based integration tests: random well-formed GEMM
//! configurations and random inputs through the whole pipeline
//! (build → validate → execute → compare with the host reference).

use graphene::ir::Arch;
use graphene::kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene::sim::host::{bias_add_ref, matmul_ref, relu_ref, HostTensor};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random well-formed Ampere GEMM configs (small enough to execute).
fn arb_ampere_cfg() -> impl Strategy<Value = GemmConfig> {
    // bm/bn multiples of warp tile; k multiples of bk; bk multiple of 16.
    (1i64..=2, 1i64..=2, 1i64..=2, prop_oneof![Just(16i64), Just(32)]).prop_map(
        |(gm, gn, kmul, bk)| {
            let (wm, wn) = (16, 16);
            let (bm, bn) = (wm * 2, wn * 2); // 2x2 warps
            GemmConfig { m: bm * gm, n: bn * gn, k: bk * kmul, bm, bn, bk, wm, wn, swizzle: true }
        },
    )
}

/// Random well-formed Volta configs.
fn arb_volta_cfg() -> impl Strategy<Value = GemmConfig> {
    (1i64..=2, 1i64..=2, prop_oneof![Just(8i64), Just(16)]).prop_map(|(gm, gn, bk)| GemmConfig {
        m: 32 * gm,
        n: 32 * gn,
        k: bk * 2,
        bm: 32,
        bn: 32,
        bk,
        wm: 32,
        wn: 32,
        swizzle: true,
    })
}

fn check(arch: Arch, cfg: &GemmConfig, epilogue: Epilogue, seed: u64) {
    let kernel = build_gemm(arch, cfg, epilogue);
    graphene::ir::validate::validate(&kernel, arch).expect("validates");
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let a = HostTensor::random(&[m, k], seed);
    let b = HostTensor::random(&[k, n], seed + 1);
    let bias: Vec<f32> = (0..n).map(|j| ((j % 7) as f32) * 0.1 - 0.3).collect();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], a.as_slice().to_vec());
    inputs.insert(kernel.params[1], b.as_slice().to_vec());
    if epilogue.has_bias() {
        inputs.insert(kernel.params[3], bias.clone());
    }
    let out = graphene::sim::execute(&kernel, arch, &inputs).expect("execute");
    let mut expect = matmul_ref(&a, &b);
    if epilogue.has_bias() {
        bias_add_ref(&mut expect, &bias);
    }
    if matches!(epilogue, Epilogue::BiasRelu | Epilogue::Relu) {
        relu_ref(&mut expect);
    }
    let got = HostTensor::from_vec(&[m, n], out.globals[&kernel.params[2]].clone());
    got.assert_close(&expect, 2e-3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any well-formed Ampere config computes a correct GEMM.
    #[test]
    fn random_ampere_gemm_correct(cfg in arb_ampere_cfg(), seed in 0u64..1000) {
        check(Arch::Sm86, &cfg, Epilogue::None, seed);
    }

    /// Epilogues compose correctly on random configs.
    #[test]
    fn random_ampere_gemm_bias_relu_correct(cfg in arb_ampere_cfg(), seed in 0u64..1000) {
        check(Arch::Sm86, &cfg, Epilogue::BiasRelu, seed);
    }

    /// Any well-formed Volta config computes a correct GEMM through the
    /// quad-pair path.
    #[test]
    fn random_volta_gemm_correct(cfg in arb_volta_cfg(), seed in 0u64..1000) {
        check(Arch::Sm70, &cfg, Epilogue::None, seed);
    }

    /// The static analysis never diverges from the interpreter's
    /// counters on random configs.
    #[test]
    fn analysis_matches_execution_on_random_configs(cfg in arb_ampere_cfg()) {
        let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
        let an = graphene::sim::analyze(&kernel, Arch::Sm86).expect("analyze");
        let ex = graphene::sim::execute(&kernel, Arch::Sm86, &HashMap::new())
            .expect("execute")
            .counters;
        prop_assert_eq!(an.flops_tc, ex.flops_tc);
        prop_assert_eq!(an.global_read_bytes, ex.global_read_bytes);
        prop_assert_eq!(an.global_write_bytes, ex.global_write_bytes);
        prop_assert_eq!(an.smem_read_bytes, ex.smem_read_bytes);
        prop_assert_eq!(an.smem_write_bytes, ex.smem_write_bytes);
        prop_assert_eq!(an.instructions, ex.instructions);
    }
}
