//! Golden equivalence tests for the compiled interpreter: for every
//! paper kernel, sequential plan execution, parallel plan execution,
//! trace replay, and the original reference interpreter must produce
//! bit-identical global buffers and identical counters.

use graphene::ir::{Arch, Kernel};
use graphene::kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene::kernels::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use graphene::kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene::sim::host::HostTensor;
use graphene::sim::{
    execute_reference, execute_with, optimize_trace, record_trace, replay_opt_with, replay_with,
    ExecMode, KernelPlan,
};
use std::collections::HashMap;

/// Runs `kernel` through every engine — sequential / parallel / forced
/// 3-worker plan execution, raw trace replay, optimized trace replay
/// (sequential and threaded), and `ExecMode::Replay` routing — and
/// asserts bit-identical globals and identical counters against the
/// reference interpreter.
fn assert_equivalent(
    name: &str,
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<graphene::ir::TensorId, Vec<f32>>,
) {
    let bindings = HashMap::new();
    let seq = execute_with(kernel, arch, inputs, &bindings, ExecMode::Sequential)
        .unwrap_or_else(|e| panic!("{name}: sequential execution failed: {e}"));
    let par = execute_with(kernel, arch, inputs, &bindings, ExecMode::Parallel)
        .unwrap_or_else(|e| panic!("{name}: parallel execution failed: {e}"));
    // Explicit worker counts force the threaded write-log merge even on
    // machines that report a single core, including uneven block/worker
    // chunking.
    let forced = execute_with(kernel, arch, inputs, &bindings, ExecMode::Workers(3))
        .unwrap_or_else(|e| panic!("{name}: 3-worker execution failed: {e}"));
    let replayed = execute_with(kernel, arch, inputs, &bindings, ExecMode::Replay)
        .unwrap_or_else(|e| panic!("{name}: replay execution failed: {e}"));
    let reference = execute_reference(kernel, arch, inputs)
        .unwrap_or_else(|e| panic!("{name}: reference execution failed: {e}"));

    // Raw vs optimized replay of the same recording, both engines in
    // both threading modes. The optimizer must be a pure representation
    // change: same globals, bit for bit, same counters.
    let plan = KernelPlan::compile(kernel, arch).unwrap_or_else(|e| panic!("{name}: plan: {e}"));
    let raw = record_trace(&plan, &bindings).unwrap_or_else(|e| panic!("{name}: record: {e}"));
    let opt = optimize_trace(&raw);
    let raw_seq = replay_with(&raw, inputs, ExecMode::Sequential)
        .unwrap_or_else(|e| panic!("{name}: raw replay failed: {e}"));
    let opt_seq = replay_opt_with(&opt, inputs, ExecMode::Sequential)
        .unwrap_or_else(|e| panic!("{name}: opt replay failed: {e}"));
    let opt_par = replay_opt_with(&opt, inputs, ExecMode::Workers(3))
        .unwrap_or_else(|e| panic!("{name}: opt 3-worker replay failed: {e}"));

    for (id, want) in &reference.globals {
        let pname = &kernel.module[*id].name;
        for (mode, got) in [
            ("sequential", &seq.globals[id]),
            ("parallel", &par.globals[id]),
            ("3 workers", &forced.globals[id]),
            ("replay", &replayed.globals[id]),
            ("raw replay", &raw_seq.globals[id]),
            ("opt replay", &opt_seq.globals[id]),
            ("opt replay, 3 workers", &opt_par.globals[id]),
        ] {
            assert_eq!(want.len(), got.len(), "{name}: %{pname} length ({mode})");
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "{name}: %{pname}[{i}] differs ({mode}): {w} vs {g}"
                );
            }
        }
    }
    assert_eq!(seq.counters, reference.counters, "{name}: sequential counters");
    assert_eq!(par.counters, reference.counters, "{name}: parallel counters");
    assert_eq!(forced.counters, reference.counters, "{name}: 3-worker counters");
    assert_eq!(replayed.counters, reference.counters, "{name}: replay counters");
    assert_eq!(opt_seq.counters, reference.counters, "{name}: opt replay counters");
}

fn gemm_inputs(kernel: &Kernel, cfg: &GemmConfig) -> HashMap<graphene::ir::TensorId, Vec<f32>> {
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let a = HostTensor::random(&[m, k], 301);
    let b = HostTensor::random(&[k, n], 302);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], a.as_slice().to_vec());
    inputs.insert(kernel.params[1], b.as_slice().to_vec());
    inputs
}

#[test]
fn gemm_ampere_small_equivalent() {
    let cfg = GemmConfig::small(32, 32, 32);
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    assert_equivalent("gemm-sm86-small", &kernel, Arch::Sm86, &gemm_inputs(&kernel, &cfg));
}

#[test]
fn gemm_ampere_multiblock_equivalent() {
    // Several independent CTAs: this is the case parallel execution
    // actually fans out.
    let cfg =
        GemmConfig { m: 64, n: 64, k: 32, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    assert_equivalent("gemm-sm86-multiblock", &kernel, Arch::Sm86, &gemm_inputs(&kernel, &cfg));
}

#[test]
fn gemm_volta_equivalent() {
    let cfg =
        GemmConfig { m: 32, n: 32, k: 16, bm: 32, bn: 32, bk: 8, wm: 32, wn: 32, swizzle: true };
    let kernel = build_gemm(Arch::Sm70, &cfg, Epilogue::None);
    assert_equivalent("gemm-sm70", &kernel, Arch::Sm70, &gemm_inputs(&kernel, &cfg));
}

#[test]
fn gemm_double_buffered_equivalent() {
    let cfg =
        GemmConfig { m: 64, n: 64, k: 64, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm_double_buffered(&cfg, Epilogue::None);
    assert_equivalent("gemm-db-sm86", &kernel, Arch::Sm86, &gemm_inputs(&kernel, &cfg));
}

#[test]
fn gemm_bias_relu_equivalent() {
    let cfg = GemmConfig::small(32, 32, 16);
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::BiasRelu);
    let mut inputs = gemm_inputs(&kernel, &cfg);
    let bias = HostTensor::random(&[32], 303);
    inputs.insert(*kernel.params.last().unwrap(), bias.as_slice().to_vec());
    assert_equivalent("gemm-sm86-bias-relu", &kernel, Arch::Sm86, &inputs);
}

#[test]
fn fmha_equivalent() {
    // Two heads -> two independent CTAs.
    let cfg = FmhaConfig { heads: 2, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    let rows = (cfg.heads * cfg.seq) as usize;
    let d = cfg.d as usize;
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], HostTensor::random(&[rows, d], 311).as_slice().to_vec());
    inputs.insert(kernel.params[1], HostTensor::random(&[rows, d], 312).as_slice().to_vec());
    inputs.insert(kernel.params[2], HostTensor::random(&[rows, d], 313).as_slice().to_vec());
    assert_equivalent("fmha-sm86", &kernel, Arch::Sm86, &inputs);
}

/// One trace, many inputs: replaying a trace recorded *before* either
/// input buffer existed must match a fresh interpretation for each.
/// This is the stale-pointer regression test — a recorder that
/// captured base pointers or input values (instead of buffer slots and
/// addresses) would replay the recording run's data here.
#[test]
fn replay_fresh_inputs_matches_fresh_interpretation() {
    let cfg =
        GemmConfig { m: 64, n: 64, k: 32, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let plan = KernelPlan::compile(&kernel, Arch::Sm86).expect("plan");
    let trace = graphene::sim::record_trace(&plan, &HashMap::new()).expect("record");

    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    for (seed_a, seed_b, mode) in
        [(401, 402, ExecMode::Sequential), (403, 404, ExecMode::Workers(3))]
    {
        let mut inputs = HashMap::new();
        let a = HostTensor::random(&[m, k], seed_a);
        let b = HostTensor::random(&[k, n], seed_b);
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let replayed = replay_with(&trace, &inputs, mode).expect("replay");
        let optimized = replay_opt_with(&optimize_trace(&trace), &inputs, mode).expect("opt");
        let reference = execute_reference(&kernel, Arch::Sm86, &inputs).expect("reference");
        for (id, want) in &reference.globals {
            let pname = &kernel.module[*id].name;
            for (engine, got) in
                [("replay", &replayed.globals[id]), ("opt replay", &optimized.globals[id])]
            {
                assert_eq!(want.len(), got.len(), "%{pname} length (seeds {seed_a}/{seed_b})");
                for (i, (w, g)) in want.iter().zip(got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "%{pname}[{i}] differs ({engine}, seeds {seed_a}/{seed_b}): {w} vs {g}"
                    );
                }
            }
        }
        assert_eq!(replayed.counters, reference.counters, "replay counters");
        assert_eq!(optimized.counters, reference.counters, "opt replay counters");
    }
}

/// The optimizer must genuinely compress an affine-dominated kernel:
/// most address slices coalesce into descriptors and the resident
/// trace shrinks by at least half (the PR's acceptance gate).
#[test]
fn optimizer_shrinks_affine_dominated_trace() {
    let cfg = LayernormConfig::new(8, 256);
    let kernel = build_layernorm(Arch::Sm86, &cfg);
    let plan = KernelPlan::compile(&kernel, Arch::Sm86).expect("plan");
    let raw = graphene::sim::record_trace(&plan, &HashMap::new()).expect("record");
    let opt = optimize_trace(&raw);
    let st = opt.stats();
    assert!(
        st.coalesced_fraction() > 0.5,
        "layernorm should be mostly affine, got {:.3} coalesced",
        st.coalesced_fraction()
    );
    assert!(
        opt.resident_bytes() * 2 <= raw.resident_bytes(),
        "expected >=50% trace-byte reduction: {} -> {}",
        raw.resident_bytes(),
        opt.resident_bytes()
    );
}

/// A shared `TraceCache` records once and serves every later request.
#[test]
fn trace_cache_records_once() {
    let cfg = GemmConfig::small(32, 32, 32);
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    let plan = KernelPlan::compile(&kernel, Arch::Sm86).expect("plan");
    let cache = graphene::sim::TraceCache::new();
    let key = graphene::sim::TraceKey {
        kernel: "gemm".into(),
        problem: "m=32 n=32 k=32".into(),
        arch: Arch::Sm86,
    };
    let bindings = HashMap::new();
    let first = cache.get_or_record(&key, &plan, &bindings).expect("record");
    let second = cache.get_or_record(&key, &plan, &bindings).expect("hit");
    assert!(std::sync::Arc::ptr_eq(&first, &second), "second request must share the trace");
    assert_eq!(cache.recordings(), 1);
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.len(), 1);
}

#[test]
fn layernorm_equivalent() {
    for arch in [Arch::Sm70, Arch::Sm86] {
        let cfg = LayernormConfig::new(8, 256);
        let kernel = build_layernorm(arch, &cfg);
        let (rows, hidden) = (cfg.rows as usize, cfg.hidden as usize);
        let mut inputs = HashMap::new();
        inputs
            .insert(kernel.params[0], HostTensor::random(&[rows, hidden], 321).as_slice().to_vec());
        inputs.insert(kernel.params[1], HostTensor::random(&[hidden], 322).as_slice().to_vec());
        inputs.insert(kernel.params[2], HostTensor::random(&[hidden], 323).as_slice().to_vec());
        assert_equivalent("layernorm", &kernel, arch, &inputs);
    }
}
