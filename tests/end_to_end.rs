//! Cross-crate integration tests: schedule construction → validation →
//! CUDA code generation → functional simulation → numerical comparison
//! against host references, plus consistency between the static analysis
//! and the interpreter's measured counters.

use graphene::ir::Arch;
use graphene::kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene::kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene::kernels::lstm::{build_fused_lstm, LstmConfig};
use graphene::kernels::mlp::{build_fused_mlp, MlpConfig};
use graphene::sim::host::{matmul_ref, HostTensor};
use std::collections::HashMap;

/// The full pipeline for one GEMM: validate, generate CUDA, execute,
/// compare numerics, and cross-check analysis vs execution counters.
fn gemm_pipeline(arch: Arch, cfg: &GemmConfig, epilogue: Epilogue) {
    let kernel = build_gemm(arch, cfg, epilogue);
    graphene::ir::validate::validate(&kernel, arch).expect("validates");

    // Code generation succeeds and contains the architecture's tensor
    // instruction.
    let cuda = graphene::codegen::generate(&kernel, arch).expect("codegen");
    match arch {
        Arch::Sm86 => {
            assert!(cuda.contains("ldmatrix.sync.aligned"), "missing ldmatrix");
            assert!(cuda.contains("mma.sync.aligned.m16n8k16"), "missing mma");
            assert!(cuda.contains("cp.async"), "missing cp.async staging");
        }
        Arch::Sm70 => {
            assert!(cuda.contains("mma.sync.aligned.m8n8k4"), "missing quad-pair mma");
            assert!(!cuda.contains("ldmatrix"), "Volta must not use ldmatrix");
        }
    }
    assert!(cuda.contains("__syncthreads()"));
    assert!(cuda.contains("__shared__ half"));

    // Functional execution matches the host reference.
    let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
    let a = HostTensor::random(&[m, k], 101);
    let b = HostTensor::random(&[k, n], 102);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], a.as_slice().to_vec());
    inputs.insert(kernel.params[1], b.as_slice().to_vec());
    let out = graphene::sim::execute(&kernel, arch, &inputs).expect("execute");
    let expect = matmul_ref(&a, &b);
    let got = HostTensor::from_vec(&[m, n], out.globals[&kernel.params[2]].clone());
    got.assert_close(&expect, 1e-3);

    // Static analysis agrees with the interpreter on every counter the
    // analysis models exactly.
    let an = graphene::sim::analyze(&kernel, arch).expect("analyze");
    let ex = out.counters;
    assert_eq!(an.flops_tc, ex.flops_tc, "tensor-core FLOPs");
    assert_eq!(an.global_read_bytes, ex.global_read_bytes, "global reads");
    assert_eq!(an.global_write_bytes, ex.global_write_bytes, "global writes");
    assert_eq!(an.smem_read_bytes, ex.smem_read_bytes, "smem reads");
    assert_eq!(an.smem_write_bytes, ex.smem_write_bytes, "smem writes");
    assert_eq!(an.instructions, ex.instructions, "instructions");
    assert_eq!(an.syncs, ex.syncs, "syncs");
    assert_eq!(an.unique_global_read_bytes, ex.unique_global_read_bytes);
}

#[test]
fn gemm_pipeline_ampere() {
    gemm_pipeline(Arch::Sm86, &GemmConfig::small(32, 32, 32), Epilogue::None);
}

#[test]
fn gemm_pipeline_ampere_multiblock() {
    let cfg =
        GemmConfig { m: 64, n: 64, k: 32, bm: 32, bn: 32, bk: 16, wm: 16, wn: 16, swizzle: true };
    gemm_pipeline(Arch::Sm86, &cfg, Epilogue::None);
}

#[test]
fn gemm_pipeline_volta() {
    let cfg =
        GemmConfig { m: 32, n: 32, k: 16, bm: 32, bn: 32, bk: 8, wm: 32, wn: 32, swizzle: true };
    gemm_pipeline(Arch::Sm70, &cfg, Epilogue::None);
}

#[test]
fn swizzle_reduces_conflicts_without_changing_results() {
    // Same schedule with and without the shared-memory swizzle: results
    // must be identical; the swizzled variant must have a strictly lower
    // bank-conflict factor (the paper's §3.2 motivation for advanced
    // layouts).
    let base =
        GemmConfig { m: 64, n: 64, k: 64, bm: 64, bn: 64, bk: 64, wm: 32, wn: 32, swizzle: false };
    let swz = GemmConfig { swizzle: true, ..base };
    let (m, n, k) = (64usize, 64, 64);
    let a = HostTensor::random(&[m, k], 11);
    let b = HostTensor::random(&[k, n], 12);

    let run = |cfg: &GemmConfig| {
        let kernel = build_gemm(Arch::Sm86, cfg, Epilogue::None);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene::sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        (out.globals[&kernel.params[2]].clone(), out.counters.conflict_factor())
    };
    let (res_plain, cf_plain) = run(&base);
    let (res_swz, cf_swz) = run(&swz);
    assert_eq!(res_plain, res_swz, "swizzle must not change values");
    assert!(cf_swz < cf_plain, "swizzled conflict factor {cf_swz} must beat unswizzled {cf_plain}");
}

#[test]
fn fused_kernels_validate_and_lower_on_both_archs() {
    for arch in [Arch::Sm70, Arch::Sm86] {
        let mlp = build_fused_mlp(
            arch,
            &MlpConfig { m: 32, hidden: 32, layers: 2, bm: 32, wm: 32, wn: 32 },
        );
        graphene::ir::validate::validate(&mlp, arch).expect("mlp validates");
        graphene::codegen::generate(&mlp, arch).expect("mlp codegen");

        let lstm =
            build_fused_lstm(arch, &LstmConfig { m: 32, hidden: 32, bm: 32, wm: 32, wn: 32 });
        graphene::ir::validate::validate(&lstm, arch).expect("lstm validates");
        graphene::codegen::generate(&lstm, arch).expect("lstm codegen");

        let ln = build_layernorm(arch, &LayernormConfig::new(8, 256));
        graphene::ir::validate::validate(&ln, arch).expect("layernorm validates");
        let cuda = graphene::codegen::generate(&ln, arch).expect("layernorm codegen");
        assert!(cuda.contains("__shfl_xor_sync"), "warp reduction lowers to shfl");
    }
}

#[test]
fn fmha_pipeline() {
    use graphene::kernels::fmha::{build_fused_fmha, FmhaConfig};
    let cfg = FmhaConfig { heads: 1, seq: 64, d: 32, bq: 64, wm: 32 };
    let kernel = build_fused_fmha(Arch::Sm86, &cfg);
    graphene::ir::validate::validate(&kernel, Arch::Sm86).expect("validates");
    let cuda = graphene::codegen::generate(&kernel, Arch::Sm86).expect("codegen");
    assert!(cuda.contains("expf("), "softmax exponent in generated code");
    assert!(cuda.contains("mma.sync"), "tensor cores in generated code");

    let rows = 64usize;
    let d = 32usize;
    let q = HostTensor::random(&[rows, d], 61);
    let k = HostTensor::random(&[rows, d], 62);
    let v = HostTensor::random(&[rows, d], 63);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], q.as_slice().to_vec());
    inputs.insert(kernel.params[1], k.as_slice().to_vec());
    inputs.insert(kernel.params[2], v.as_slice().to_vec());
    let out = graphene::sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
    let expect = graphene::sim::host::attention_ref(&q, &k, &v);
    let got = HostTensor::from_vec(&[rows, d], out.globals[&kernel.params[3]].clone());
    got.assert_close(&expect, 2e-3);
}

#[test]
fn generated_cuda_is_stable_across_builds() {
    let cfg = GemmConfig::small(32, 32, 16);
    let k1 = build_gemm(Arch::Sm86, &cfg, Epilogue::BiasRelu);
    let k2 = build_gemm(Arch::Sm86, &cfg, Epilogue::BiasRelu);
    assert_eq!(
        graphene::codegen::generate(&k1, Arch::Sm86).unwrap(),
        graphene::codegen::generate(&k2, Arch::Sm86).unwrap()
    );
}

#[test]
fn full_cublas_tile_configuration_verifies() {
    // One complete 128x128x32-tile block with the paper's 2x2 warps and
    // 64x64 warp tiles — the exact per-block configuration used at the
    // Figure 9 evaluation scale, executed functionally.
    let cfg = GemmConfig::cublas_like(128, 128, 64);
    let kernel = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
    graphene::ir::validate::validate(&kernel, Arch::Sm86).expect("validates");
    let a = HostTensor::random(&[128, 64], 701);
    let b = HostTensor::random(&[64, 128], 702);
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], a.as_slice().to_vec());
    inputs.insert(kernel.params[1], b.as_slice().to_vec());
    let out = graphene::sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
    let expect = matmul_ref(&a, &b);
    let got = HostTensor::from_vec(&[128, 128], out.globals[&kernel.params[2]].clone());
    got.assert_close(&expect, 1e-3);
    assert_eq!(out.counters.flops_tc, 2 * 128 * 128 * 64);
}
