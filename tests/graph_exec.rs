//! Graph-executor equivalence and workspace-planning suite.
//!
//! The contract under test: a full transformer encoder layer lowered
//! two ways (fused epilogues vs one-kernel-per-node) executes
//! **bit-identically**, the whole-graph trace replay engine matches
//! the compiled-plan engine bit-for-bit (outputs *and* counters), the
//! liveness-planned arena beats naive per-kernel allocation by the
//! margin the PR requires, and both trace caches evict LRU under a
//! capacity bound.

use graphene_ir::Arch;
use graphene_kernels::exec_lower::{lower_executable, ExecLowering};
use graphene_kernels::graph::encoder_graph;
use graphene_sim::run::ExecMode;
use graphene_sim::{
    execute_graph, record_graph, replay_graph, ExecGraph, GraphTraceCache, HostTensor, TraceCache,
};
use std::collections::HashMap;

/// Deterministic pseudo-random values for every external the graph
/// needs (input, weights, biases, layernorm params).
fn random_inputs(g: &ExecGraph) -> HashMap<String, Vec<f32>> {
    g.externals()
        .iter()
        .enumerate()
        .map(|(i, (name, len))| {
            (name.clone(), HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec())
        })
        .collect()
}

/// Output values as bits, in temp order. Temp *indices* differ across
/// lowerings (they number different intermediate chains), so only the
/// values are compared.
fn bits(out: &HashMap<usize, Vec<f32>>) -> Vec<Vec<u32>> {
    let mut v: Vec<(usize, Vec<u32>)> =
        out.iter().map(|(t, xs)| (*t, xs.iter().map(|x| x.to_bits()).collect())).collect();
    v.sort_by_key(|(t, _)| *t);
    v.into_iter().map(|(_, b)| b).collect()
}

/// One encoder layer at test size: batch 1, seq 64, hidden 256,
/// 4 heads (d=64), FFN 256 — every kernel is the real schedule
/// (bq=64 FMHA, 64x64 GEMM tiles).
fn test_encoder() -> graphene_kernels::graph::Graph {
    encoder_graph(1, 1, 64, 256, 4, 256)
}

#[test]
fn fused_and_default_lowerings_execute_bit_identically() {
    let g = test_encoder();
    let fused = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("fused lowers");
    let default = lower_executable(&g, Arch::Sm86, ExecLowering::Default).expect("default lowers");
    assert!(fused.nodes.len() < default.nodes.len(), "fusion must drop launches");

    let inputs = random_inputs(&fused);
    let a = execute_graph(&fused, &inputs, ExecMode::Sequential).expect("fused executes");
    let b = execute_graph(&default, &inputs, ExecMode::Sequential).expect("default executes");
    assert_eq!(bits(&a.outputs), bits(&b.outputs), "lowerings diverged bitwise");

    // Sanity: the output is non-trivial (not the zero-fill).
    let out = a.outputs.values().next().expect("one output");
    assert!(out.iter().any(|x| *x != 0.0));
}

#[test]
fn graph_replay_matches_plan_execution_bitwise() {
    let g = test_encoder();
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    let inputs = random_inputs(&eg);

    let plan_out = execute_graph(&eg, &inputs, ExecMode::Sequential).expect("plan engine");
    let traces = TraceCache::new();
    let gt = record_graph(&eg, &traces).expect("records");
    let replay_out = replay_graph(&gt, &inputs, ExecMode::Sequential).expect("replay engine");

    assert_eq!(bits(&plan_out.outputs), bits(&replay_out.outputs), "engines diverged bitwise");
    assert_eq!(plan_out.counters, replay_out.counters, "replay must report recorded counters");

    // Replay with fresh inputs — no re-recording, different data.
    let mut inputs2 = inputs.clone();
    for v in inputs2.get_mut("x").expect("input x") {
        *v += 0.25;
    }
    let before = traces.recordings();
    let replay2 = replay_graph(&gt, &inputs2, ExecMode::Sequential).expect("fresh replay");
    assert_eq!(traces.recordings(), before, "replay must not re-record");
    assert_ne!(bits(&replay_out.outputs), bits(&replay2.outputs), "fresh inputs, fresh outputs");
}

#[test]
fn parallel_graph_execution_is_bit_identical_to_sequential() {
    let g = test_encoder();
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    let inputs = random_inputs(&eg);
    let seq = execute_graph(&eg, &inputs, ExecMode::Sequential).expect("sequential");
    let par = execute_graph(&eg, &inputs, ExecMode::Parallel).expect("parallel");
    assert_eq!(bits(&seq.outputs), bits(&par.outputs));

    let traces = TraceCache::new();
    let gt = record_graph(&eg, &traces).expect("records");
    let par_replay = replay_graph(&gt, &inputs, ExecMode::Parallel).expect("parallel replay");
    assert_eq!(bits(&seq.outputs), bits(&par_replay.outputs));
}

#[test]
fn identical_kernel_instances_share_one_recording() {
    // The default-lowered encoder launches the same (kernel, problem)
    // more than once (QKV and attention-out projections, bias-adds of
    // equal shape) — the trace cache must record each distinct
    // instance once.
    let g = test_encoder();
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Default).expect("lowers");
    let traces = TraceCache::new();
    let _ = record_graph(&eg, &traces).expect("records");
    assert!(
        (traces.recordings() as usize) < eg.nodes.len(),
        "{} recordings for {} launches — no sharing",
        traces.recordings(),
        eg.nodes.len()
    );
    assert!(traces.hits() > 0);
}

#[test]
fn workspace_arena_beats_naive_allocation() {
    // The acceptance bar: >= 30% peak-workspace reduction on the
    // 2-layer benchmark encoder.
    let g = encoder_graph(2, 1, 128, 256, 4, 1024);
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    let ws = eg.workspace();
    assert!(ws.arena_scalars < ws.naive_scalars);
    assert!(
        ws.saving() >= 0.30,
        "arena {} vs naive {} saves only {:.0}%",
        ws.arena_scalars,
        ws.naive_scalars,
        ws.saving() * 100.0
    );
    // And the executor actually runs inside that arena.
    let out = execute_graph(&eg, &random_inputs(&eg), ExecMode::Sequential).expect("executes");
    assert_eq!(out.workspace.arena_scalars, ws.arena_scalars);
}

#[test]
fn trace_cache_evicts_least_recently_used() {
    let g = test_encoder();
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    // Capacity 1: every new distinct kernel evicts the previous one.
    let traces = TraceCache::with_capacity(1);
    let _ = record_graph(&eg, &traces).expect("records");
    let distinct = traces.recordings();
    assert!(distinct > 1, "need several distinct kernels");
    assert_eq!(traces.len(), 1, "capacity bound holds");
    assert_eq!(traces.evictions(), distinct - 1);

    // A re-record of the whole graph re-records evicted keys instead
    // of growing the cache.
    let _ = record_graph(&eg, &traces).expect("re-records");
    assert!(traces.recordings() > distinct);
    assert_eq!(traces.len(), 1);
}

#[test]
fn graph_trace_cache_hits_then_evicts() {
    let g1 = test_encoder();
    let eg1 = lower_executable(&g1, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    let eg1_default = lower_executable(&g1, Arch::Sm86, ExecLowering::Default).expect("lowers");

    let traces = TraceCache::new();
    let graphs = GraphTraceCache::with_capacity(1);
    let t1 = graphs.get_or_record(&eg1, &traces).expect("records");
    assert_eq!((graphs.recordings(), graphs.hits()), (1, 0));

    // Same graph again: a hit, no new stitch.
    let t1b = graphs.get_or_record(&eg1, &traces).expect("hits");
    assert_eq!((graphs.recordings(), graphs.hits()), (1, 1));
    assert_eq!(t1.num_kernels(), t1b.num_kernels());

    // A different lowering is a different signature: evicts at cap 1.
    let _ = graphs.get_or_record(&eg1_default, &traces).expect("records second");
    assert_eq!(graphs.recordings(), 2);
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs.evictions(), 1);

    // The evicted graph re-stitches (cheap: per-kernel traces still
    // cached) rather than erroring.
    let _ = graphs.get_or_record(&eg1, &traces).expect("re-records");
    assert_eq!(graphs.recordings(), 3);
}

#[test]
fn graph_executor_rejects_mis_sized_external() {
    let g = test_encoder();
    let eg = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("lowers");
    let mut inputs = random_inputs(&eg);
    inputs.get_mut("x").expect("x").pop();
    let err = execute_graph(&eg, &inputs, ExecMode::Sequential).unwrap_err();
    assert!(format!("{err}").contains("graph input `x`"), "{err}");
}
